// Designflow walks the paper's Figure 1 end to end on a program written
// in textual assembly: profile → synthesize (with the requirements
// feedback loop) → compile (translate) → configure (marshal the decoder
// state, restore it as a fresh "processor") → execute.
//
//	go run ./examples/designflow
package main

import (
	"fmt"
	"log"

	"powerfits"
)

// source is a dot-product kernel in the toolchain's assembly syntax.
const source = `
; dot product of two fixed-point vectors, written as assembly text
.data va
	.word 100, -200, 300, -400, 500, -600, 700, -800
.data vb
	.word 3, 5, 7, 9, 11, 13, 15, 17
.func main
	ldc r1, =0x100000   ; &va
	ldc r2, =0x100020   ; &vb
	mov r0, #0          ; acc
	mov r3, #8          ; count
loop:
	ldr r4, [r1], #4
	ldr r5, [r2], #4
	mla r0, r4, r5, r0
	subs r3, r3, #1
	bne loop
	swi #1              ; report acc
	swi #0
`

func main() {
	// Stage 0: assemble the text.
	prog, err := powerfits.ParseAsm("dotprod", source)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: profile (runs the application to completion).
	prof, err := powerfits.Collect(prog, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile:    %d static instrs, %d dynamic\n",
		prof.TotalStatic, prof.TotalDyn)

	// Stage 2: synthesize, iterating until the designer's requirements
	// hold (Figure 1's feedback edge).
	goal := powerfits.Goal{MaxCodeRatio: 0.60, MinStaticMapping: 0.95}
	gr, err := powerfits.SynthesizeToGoal(prof, powerfits.DefaultSynthOptions(), goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesize: k=%d, %d opcode points, accepted after %d iteration(s)\n",
		gr.Synthesis.K, gr.Synthesis.Spec.UsedPoints(), gr.Iterations)
	fmt.Printf("            mapping %.1f%%, code %.1f%% of ARM\n",
		100*gr.StaticMapping, 100*gr.CodeRatio)

	// Stage 3: configure — serialize the programmable-decoder state and
	// load it into a "fresh processor".
	blob := gr.Synthesis.Spec.MarshalConfig()
	spec, err := powerfits.UnmarshalConfig(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configure:  %d bytes of decoder state downloaded\n", len(blob))

	// Stage 4: compile against the restored decoder and execute.
	tr, err := powerfits.Translate(prog, spec)
	if err != nil {
		log.Fatal(err)
	}
	setup, err := powerfits.PrepareProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	r, err := setup.Run(powerfits.FITS8, powerfits.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execute:    FITS image %d bytes, output %d (dot product), IPC %.2f\n",
		tr.Image.Size(), int32(r.Pipe.Output[0]), r.Pipe.IPC())
}
