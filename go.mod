module powerfits

go 1.22
