#!/bin/sh
# Tier-1 verification plus the concurrency checks for the parallel
# experiment engine. Run from the repository root.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel engine + sim + telemetry + serving plane) =="
go test -race ./internal/sim ./internal/experiments ./internal/telemetry ./cmd/internal/cli \
    ./internal/serve ./internal/archive

echo "== benchmark smoke: fetch port stays allocation-free =="
bench=$(go test -run=NONE -bench=BenchmarkFetchPort -benchtime=10x -benchmem .)
echo "$bench"
if ! echo "$bench" | grep -q "BenchmarkFetchPort.* 0 allocs/op"; then
    echo "ci.sh: BenchmarkFetchPort allocates on the hot path" >&2
    exit 1
fi

echo "== benchmark smoke: predecoded timing loop stays allocation-free =="
# The steady-state cycle loop (RunPipelineInto over the shared predecode
# table) must perform zero heap allocations; both ISA configurations are
# checked.
bench=$(go test -run=NONE -bench=BenchmarkPipelineSteadyState -benchtime=1x -benchmem .)
echo "$bench"
if [ "$(echo "$bench" | grep -c "BenchmarkPipelineSteadyState/.* 0 allocs/op")" -ne 2 ]; then
    echo "ci.sh: pipeline steady-state cycle loop allocates" >&2
    exit 1
fi

echo "== benchmark smoke: tracing entry point stays allocation-free =="
# The traced pipeline entry must cost nothing when untraced (nil sink
# dispatches back into the plain loop) and nothing per event when a
# ring sink is attached; both paths are gated at 0 allocs/op.
bench=$(go test -run=NONE -bench=BenchmarkPipelineTraced -benchtime=1x -benchmem .)
echo "$bench"
if [ "$(echo "$bench" | grep -c "BenchmarkPipelineTraced/.* 0 allocs/op")" -ne 2 ]; then
    echo "ci.sh: traced pipeline entry allocates" >&2
    exit 1
fi

echo "== benchmark smoke: functional machine stays allocation-free =="
# The functional machine's steady state (legacy Step loop, the compiled
# micro-op table, and the superblock-fused executor) must perform zero
# heap allocations on all three execution paths.
bench=$(go test -run=NONE -bench=BenchmarkMachineSteadyState -benchtime=1x -benchmem .)
echo "$bench"
if [ "$(echo "$bench" | grep -c "BenchmarkMachineSteadyState/.* 0 allocs/op")" -ne 3 ]; then
    echo "ci.sh: functional machine steady state allocates" >&2
    exit 1
fi

echo "== sampled estimator: accuracy gate on one kernel =="
# TestSampledAccuracy sweeps all 21 kernels x 4 configs asserting the
# sampled cycles and fetch energy land within 2% of the full pipeline;
# the full sweep runs in `go test ./...` above. This re-runs the single
# heaviest kernel explicitly so a sampling regression names itself even
# when someone trims the test matrix.
go test ./internal/sim -run 'TestSampledAccuracy/jpeg' -count=1

echo "== perf trajectory: pipeline benchmark record =="
# Refreshes BENCH_pipeline.json (schema v5: cycles/sec of the timing
# loop, the sampled estimator with its measured cycle error, instrs/sec
# of the functional machine on all three execution paths, the
# per-kernel Prepare cost, the design-space sweep, and the serving
# plane's hit/cold req/sec) so successive PRs can chart regressions; a
# per-entry delta table against the previous record prints first.
go run ./cmd/fitsbench -pipebench BENCH_pipeline.json

echo "== trace export: generate + validate round trip =="
# `powerfits trace` must emit a document its own -check accepts (the
# exact bytes are additionally pinned by TestGoldenChromeTrace).
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT
go run ./cmd/powerfits trace -kernel crc32 -config FITS8 -scale 1 -o "$trace_tmp/trace.json"
go run ./cmd/powerfits trace -check -in "$trace_tmp/trace.json"

echo "== telemetry plane: live scrape of a running suite =="
# Boots a scale-1 suite with the embedded debug server on an ephemeral
# port (the -telemetry-addrfile handshake publishes it), scrapes
# /metrics and /healthz while the server is up, and strict-parses both
# payloads with `powerfits scrape`. -telemetry-linger holds the server
# past suite completion so the scrapes always catch the final state.
tele_tmp=$(mktemp -d)
trap 'rm -rf "$tele_tmp" "$trace_tmp"' EXIT
go build -o "$tele_tmp/fitsbench" ./cmd/fitsbench
go build -o "$tele_tmp/powerfits" ./cmd/powerfits
"$tele_tmp/fitsbench" -scale 1 -q -exp headline \
    -telemetry 127.0.0.1:0 -telemetry-addrfile "$tele_tmp/addr" \
    -telemetry-linger 5s >/dev/null 2>"$tele_tmp/fitsbench.log" &
tele_pid=$!
addr=""
for _ in $(seq 1 100); do
    if [ -s "$tele_tmp/addr" ]; then addr=$(cat "$tele_tmp/addr"); break; fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci.sh: telemetry server never published its address" >&2
    cat "$tele_tmp/fitsbench.log" >&2
    kill "$tele_pid" 2>/dev/null || true
    exit 1
fi
"$tele_tmp/powerfits" scrape -url "http://$addr/metrics"
"$tele_tmp/powerfits" scrape -url "http://$addr/healthz" -health
if ! wait "$tele_pid"; then
    echo "ci.sh: instrumented fitsbench run failed" >&2
    cat "$tele_tmp/fitsbench.log" >&2
    exit 1
fi

echo "== serving plane: daemon smoke (cache hit + CLI equivalence) =="
# Boots `powerfits serve` on an ephemeral port (same -telemetry-addrfile
# handshake as the debug server), POSTs one scale-1 request twice, and
# asserts the contract end to end: the second response is a cache hit
# (the serve/cache hit counter moves, checked through `powerfits
# scrape`), both bodies are byte-identical, and both match the report a
# direct `powerfits run -o` computes locally. SIGTERM must drain
# gracefully (exit 0).
serve_tmp=$(mktemp -d)
trap 'rm -rf "$serve_tmp" "$trace_tmp" "$tele_tmp"' EXIT
"$tele_tmp/powerfits" serve -addr 127.0.0.1:0 -telemetry-addrfile "$serve_tmp/addr" \
    -dir "$serve_tmp/store" -j 2 >"$serve_tmp/serve.out" 2>"$serve_tmp/serve.log" &
serve_pid=$!
saddr=""
for _ in $(seq 1 100); do
    if [ -s "$serve_tmp/addr" ]; then saddr=$(cat "$serve_tmp/addr"); break; fi
    sleep 0.1
done
if [ -z "$saddr" ]; then
    echo "ci.sh: serve daemon never published its address" >&2
    cat "$serve_tmp/serve.log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
"$tele_tmp/powerfits" call -url "http://$saddr/synth" -kernel crc32 -scale 1 \
    -config FITS8 -o "$serve_tmp/first.json" 2>>"$serve_tmp/serve.log"
"$tele_tmp/powerfits" call -url "http://$saddr/synth" -kernel crc32 -scale 1 \
    -config FITS8 -o "$serve_tmp/second.json" 2>>"$serve_tmp/serve.log"
if ! cmp -s "$serve_tmp/first.json" "$serve_tmp/second.json"; then
    echo "ci.sh: cached serve response differs from the cold one" >&2
    exit 1
fi
"$tele_tmp/powerfits" scrape -url "http://$saddr/metrics" -o "$serve_tmp/metrics.txt" >/dev/null
if ! grep -q 'powerfits_hits_total{scope="serve/cache"} 1' "$serve_tmp/metrics.txt"; then
    echo "ci.sh: second serve request was not a cache hit:" >&2
    grep 'scope="serve/cache"' "$serve_tmp/metrics.txt" >&2 || true
    exit 1
fi
"$tele_tmp/powerfits" run -kernel crc32 -scale 1 -config FITS8 \
    -o "$serve_tmp/direct.json" >/dev/null 2>&1
if ! cmp -s "$serve_tmp/first.json" "$serve_tmp/direct.json"; then
    echo "ci.sh: serve response differs from the direct powerfits run report" >&2
    exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "ci.sh: serve daemon did not drain cleanly on SIGTERM" >&2
    cat "$serve_tmp/serve.log" >&2
    exit 1
fi

echo "== incremental sweep gate: warm re-sweep does zero simulation =="
# Runs the same small design-space sweep twice against one run store.
# The cold pass simulates every point; the warm pass must resolve 100%
# of the grid from the archive (evaluated=0 in the structured log, skip
# count == point count) and reproduce the frontier document byte for
# byte — the determinism + incrementality contract of internal/sweep.
sweep_tmp=$(mktemp -d)
trap 'rm -rf "$sweep_tmp" "$serve_tmp" "$trace_tmp" "$tele_tmp"' EXIT
sweep_axes="-kernel crc32 -scale 1 -ks 4,5,6 -dicts 16,64 -caches 4K,8K"
go run ./cmd/powerfits sweep $sweep_axes -dir "$sweep_tmp/store" \
    -o "$sweep_tmp/cold.json" 2>"$sweep_tmp/cold.log" >/dev/null
go run ./cmd/powerfits sweep $sweep_axes -dir "$sweep_tmp/store" \
    -o "$sweep_tmp/warm.json" 2>"$sweep_tmp/warm.log" >/dev/null
if ! grep -q "points=12 evaluated=0 archive_skips=12" "$sweep_tmp/warm.log"; then
    echo "ci.sh: warm re-sweep simulated points it should have skipped:" >&2
    grep "sweep done" "$sweep_tmp/warm.log" >&2 || cat "$sweep_tmp/warm.log" >&2
    exit 1
fi
if ! cmp -s "$sweep_tmp/cold.json" "$sweep_tmp/warm.json"; then
    echo "ci.sh: warm sweep document differs from cold (determinism break)" >&2
    exit 1
fi

echo "== regression gate: scale-1 suite vs committed baseline =="
# Archives a fresh scale-1 run and diffs it against testdata/baseline.json.
# Any figure or per-kernel metric moving in the wrong direction fails the
# build (powerfits diff exits nonzero). After an intentional model change,
# refresh the baseline with:
#   go run ./cmd/fitsbench -scale 1 -q -exp headline -archive testdata/baseline.json
gate_tmp=$(mktemp -d)
trap 'rm -rf "$gate_tmp" "$sweep_tmp" "$serve_tmp" "$trace_tmp" "$tele_tmp"' EXIT
go run ./cmd/fitsbench -scale 1 -q -exp headline -archive "$gate_tmp/current.json" >/dev/null
go run ./cmd/powerfits diff -base testdata/baseline.json -new "$gate_tmp/current.json"

echo "ci.sh: all checks passed"
