#!/bin/sh
# Tier-1 verification plus the concurrency checks for the parallel
# experiment engine. Run from the repository root.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel engine + sim) =="
go test -race ./internal/sim ./internal/experiments

echo "ci.sh: all checks passed"
