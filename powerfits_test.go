package powerfits_test

import (
	"fmt"
	"testing"

	"powerfits"
)

// buildDemo authors a small self-checking program through the public
// API.
func buildDemo() (*powerfits.Program, error) {
	b := powerfits.NewProgram("demo")
	b.Words("tab", []uint32{2, 3, 5, 7, 11, 13, 17, 19})
	b.Func("main")
	b.Lea(powerfits.R1, "tab")
	b.MovI(powerfits.R2, 8)
	b.MovI(powerfits.R0, 1)
	b.Label("loop")
	b.Ldr(powerfits.R3, powerfits.R1, 0)
	b.AddI(powerfits.R1, powerfits.R1, 4)
	b.Mul(powerfits.R0, powerfits.R0, powerfits.R3)
	b.SubsI(powerfits.R2, powerfits.R2, 1)
	b.Bne("loop")
	b.EmitWord()
	b.Exit()
	return b.Build()
}

func TestPublicAPIFlow(t *testing.T) {
	prog, err := buildDemo()
	if err != nil {
		t.Fatal(err)
	}

	// Functional execution: product of the first eight primes.
	m, err := powerfits.RunFunctional(prog, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 1 || m.Output[0] != 9699690 {
		t.Fatalf("output = %v, want [9699690]", m.Output)
	}

	// Stage-by-stage design flow.
	prof, err := powerfits.Collect(prog, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := powerfits.Synthesize(prof, powerfits.DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := powerfits.Translate(prog, syn.Spec)
	if err != nil {
		t.Fatal(err)
	}
	armIm, err := powerfits.AssembleARM(prog)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Image.Size() >= armIm.Size() {
		t.Errorf("FITS %dB not smaller than ARM %dB", tr.Image.Size(), armIm.Size())
	}
	ts, err := powerfits.ThumbSize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ts.TotalBytes() <= 0 {
		t.Error("thumb sizing empty")
	}

	// One-call flow plus a timing run.
	setup, err := powerfits.PrepareProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range powerfits.Configs {
		r, err := setup.Run(cfg, powerfits.DefaultCalibration())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(r.Pipe.Output) != 1 || r.Pipe.Output[0] != 9699690 {
			t.Fatalf("%s output = %v", cfg.Name, r.Pipe.Output)
		}
	}
}

func TestKernelRegistry(t *testing.T) {
	ks := powerfits.Kernels()
	if len(ks) != 21 {
		t.Fatalf("suite has %d kernels, want 21", len(ks))
	}
	if _, err := powerfits.KernelByName("crc32"); err != nil {
		t.Error(err)
	}
	if _, err := powerfits.KernelByName("nonsense"); err == nil {
		t.Error("unknown kernel accepted")
	}
	groups := map[string]int{}
	for _, k := range ks {
		groups[k.Group]++
	}
	for _, g := range []string{"automotive", "consumer", "network", "office", "security", "telecomm"} {
		if groups[g] == 0 {
			t.Errorf("MiBench group %q empty", g)
		}
	}
}

// Example demonstrates the README quick-start.
func Example() {
	b := powerfits.NewProgram("answer")
	b.Func("main")
	b.MovI(powerfits.R0, 42)
	b.EmitWord()
	b.Exit()
	prog := b.MustBuild()

	m, err := powerfits.RunFunctional(prog, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Output[0])
	// Output: 42
}

// ExampleSynthesize shows the explicit design-flow stages.
func ExampleSynthesize() {
	prog, err := buildDemo()
	if err != nil {
		panic(err)
	}
	prof, _ := powerfits.Collect(prog, 1e6)
	syn, _ := powerfits.Synthesize(prof, powerfits.DefaultSynthOptions())
	tr, _ := powerfits.Translate(prog, syn.Spec)
	fmt.Printf("1:1 static mapping above 90%%: %v\n", tr.StaticMappingRate() > 0.9)
	fmt.Printf("every FITS instruction is 16-bit aligned: %v\n", tr.Image.Size()%2 == 0)
	// Output:
	// 1:1 static mapping above 90%: true
	// every FITS instruction is 16-bit aligned: true
}
