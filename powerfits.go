// Package powerfits is the public API of the PowerFITS reproduction: a
// complete implementation of Framework-based Instruction-set Tuning
// Synthesis (FITS) applied to instruction-cache power reduction, after
// Cheng, Tyson and Mudge, "PowerFITS: Reduce Dynamic and Static I-Cache
// Power Using Application Specific Instruction Set Synthesis"
// (ISPASS 2005).
//
// The library spans the paper's whole system:
//
//   - an ARM-subset semantic IR with a bit-accurate 32-bit encoder
//     (the baseline ISA) and an assembler/builder for authoring
//     programs (NewProgram);
//   - the FITS design flow — Profile → Synthesize → Translate —
//     which tailors a 16-bit instruction set to one application
//     (opcode points, two-operand and implied-base variants,
//     per-point immediate dictionaries, a ranked register window)
//     and retargets the binary onto it;
//   - a Thumb-style 16-bit sizing baseline (ThumbSize);
//   - an SA-1100-class timing simulator (dual-issue in-order pipeline,
//     set-associative I-cache, sim-panalyzer-style power model) that
//     fetches real encoded bytes through the cache;
//   - the paper's 21-benchmark MiBench-like workload suite
//     (Kernels, KernelByName) and every evaluation experiment
//     (RunSuite and the experiments package's figure tables).
//
// # Quick start
//
//	b := powerfits.NewProgram("answer")
//	b.Func("main")
//	b.MovI(powerfits.R0, 42)
//	b.EmitWord() // SWI 1: output r0
//	b.Exit()
//	prog := b.MustBuild()
//
//	setup, _ := powerfits.PrepareProgram(prog)
//	fmt.Printf("ARM %dB → FITS %dB, static 1:1 = %.1f%%\n",
//	    setup.ArmImage.Size(), setup.Fits.Image.Size(),
//	    100*setup.Fits.StaticMappingRate())
package powerfits

import (
	"powerfits/internal/asm"
	"powerfits/internal/cache"
	"powerfits/internal/cpu"
	"powerfits/internal/experiments"
	"powerfits/internal/isa"
	"powerfits/internal/isa/arm"
	"powerfits/internal/isa/fits"
	"powerfits/internal/isa/thumb"
	"powerfits/internal/kernels"
	"powerfits/internal/power"
	"powerfits/internal/profile"
	"powerfits/internal/program"
	"powerfits/internal/sim"
	"powerfits/internal/synth"
	"powerfits/internal/translate"
)

// ---- Program authoring ----

// Builder assembles a program in the semantic IR: functions, labels,
// data symbols and the full ARM-subset instruction repertoire.
type Builder = asm.Builder

// Program is a built workload: instructions, functions, data, symbols.
type Program = program.Program

// Image is a target-encoded text image (ARM 32-bit or FITS 16-bit).
type Image = program.Image

// NewProgram returns an empty program builder.
func NewProgram(name string) *Builder { return asm.New(name) }

// Register and condition names re-exported for authoring convenience.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	SP  = isa.SP
	LR  = isa.LR
)

// ---- The FITS design flow ----

// Profile is the requirement analysis of one program (the flow's first
// stage): signature, literal and register-pressure statistics plus
// per-instruction execution counts.
type Profile = profile.Profile

// Collect profiles a program by running it to completion functionally.
// maxInstrs bounds the run (0 = unlimited).
func Collect(p *Program, maxInstrs uint64) (*Profile, error) {
	return profile.Collect(p, maxInstrs)
}

// SynthOptions controls instruction-set synthesis (opcode width search,
// dictionary capacity, ablation switches).
type SynthOptions = synth.Options

// DefaultSynthOptions returns the configuration used by the paper
// experiments.
func DefaultSynthOptions() SynthOptions { return synth.DefaultOptions() }

// Synthesis is a synthesized instruction set: the Spec (programmable
// decoder contents) plus the BIS/SIS/AIS provenance breakdown.
type Synthesis = synth.Synthesis

// Synthesize tailors a 16-bit FITS instruction set to the profiled
// application.
func Synthesize(prof *Profile, opts SynthOptions) (*Synthesis, error) {
	return synth.Synthesize(prof, opts)
}

// Goal expresses designer requirements for SynthesizeToGoal (code-size
// ratio, mapping rate, decoder-configuration budget).
type Goal = synth.Goal

// GoalResult is an accepted iterative synthesis.
type GoalResult = synth.GoalResult

// SynthesizeToGoal runs the paper's Figure 1 feedback loop:
// synthesize, evaluate against the goal, adjust and repeat.
func SynthesizeToGoal(prof *Profile, base SynthOptions, goal Goal) (*GoalResult, error) {
	return synth.SynthesizeToGoal(prof, base, goal)
}

// Spec is the synthesized ISA definition — the contents of the FITS
// processor's programmable instruction decoder, register window and
// immediate value storage.
type Spec = fits.Spec

// UnmarshalConfig restores a Spec from a decoder-configuration image
// (Spec.MarshalConfig), the paper's post-fabrication download.
func UnmarshalConfig(data []byte) (*Spec, error) { return fits.UnmarshalConfig(data) }

// ParseAsm assembles textual assembly (the syntax Format/disassembly
// emits) into a program.
func ParseAsm(name, src string) (*Program, error) { return asm.Parse(name, src) }

// FormatAsm renders a program as assembly text that ParseAsm accepts.
func FormatAsm(p *Program) string { return asm.Format(p) }

// Signature identifies an instruction shape (the unit of synthesis).
type Signature = fits.Signature

// Translation is a completed ARM→FITS binary translation: the lowered
// program, its 16-bit image and the 1:1/1:n mapping bookkeeping.
type Translation = translate.Result

// Translate retargets a program onto a synthesized instruction set.
func Translate(p *Program, spec *Spec) (*Translation, error) {
	return translate.Translate(p, spec)
}

// AssembleARM encodes a program into its 32-bit ARM baseline image.
func AssembleARM(p *Program) (*Image, error) { return arm.Assemble(p) }

// ThumbSizing is the Thumb-style code-size baseline result.
type ThumbSizing = thumb.Sizing

// ThumbSize computes the Thumb-style 16-bit sizing of a program
// (Figure 5's middle bar).
func ThumbSize(p *Program) (*ThumbSizing, error) { return thumb.Translate(p) }

// ---- Simulation ----

// Config is one simulated processor configuration (ISA × I-cache).
type Config = sim.Config

// The paper's four configurations: the baseline ARM with 16 KB and 8 KB
// I-caches, and the synthesized FITS ISA with the same two caches.
var (
	ARM16  = sim.ARM16
	ARM8   = sim.ARM8
	FITS16 = sim.FITS16
	FITS8  = sim.FITS8
)

// Configs lists the four configurations in the paper's order.
var Configs = sim.Configs

// Setup bundles everything derived from one workload: the ARM image,
// profile, synthesis, FITS translation and Thumb sizing.
type Setup = sim.Setup

// Result is one configuration's timing/power outcome.
type Result = sim.Result

// CacheConfig parameterises an instruction cache.
type CacheConfig = cache.Config

// Calibration holds the power-model coefficients.
type Calibration = power.Calibration

// DefaultCalibration returns the SA-1100-class power calibration.
func DefaultCalibration() Calibration { return power.DefaultCalibration() }

// PowerReport is the energy/power outcome of one run.
type PowerReport = power.Report

// Kernel is one benchmark workload of the MiBench-like suite.
type Kernel = kernels.Kernel

// Kernels returns the 21-benchmark suite, sorted by name.
func Kernels() []Kernel { return kernels.All() }

// KernelByName looks up one benchmark.
func KernelByName(name string) (Kernel, error) { return kernels.Get(name) }

// Prepare builds, profiles, synthesizes and translates one kernel
// (scale ≤ 0 uses the kernel's default workload scale).
func Prepare(k Kernel, scale int, opts SynthOptions) (*Setup, error) {
	return sim.Prepare(k, scale, opts)
}

// PrepareProgram runs the whole design flow over a user-authored
// program with default options.
func PrepareProgram(p *Program) (*Setup, error) {
	return sim.Prepare(Kernel{
		Name:         p.Name,
		Group:        "user",
		Build:        func(int) *Program { return p },
		Ref:          func(int) []uint32 { return nil },
		DefaultScale: 1,
	}, 1, DefaultSynthOptions())
}

// RunFunctional executes a program on the functional interpreter and
// returns the finished machine (architectural state and SWI-1 output).
func RunFunctional(p *Program, maxInstrs uint64) (*cpu.Machine, error) {
	return cpu.RunFunctional(p, maxInstrs)
}

// ---- Experiments ----

// Suite holds prepared setups and timing results for the whole
// benchmark suite.
type Suite = experiments.Suite

// Table is one rendered experiment (figure) result.
type Table = experiments.Table

// RunSuite prepares and simulates the 21-kernel suite under the four
// configurations. scale ≤ 0 uses per-kernel defaults; progress
// (optional) receives one line per kernel.
func RunSuite(scale int, progress func(string)) (*Suite, error) {
	return experiments.Run(scale, progress)
}
