// Benchmark harness: one benchmark per paper table/figure (each
// regenerates the corresponding experiment) plus micro-benchmarks of the
// core substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks run the suite at scale 1 so a full -bench
// pass stays in CI territory; `cmd/fitsbench` runs the full-scale
// version and prints the tables.
package powerfits

import (
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"powerfits/internal/archive"
	"powerfits/internal/cache"
	"powerfits/internal/cpu"
	"powerfits/internal/experiments"
	"powerfits/internal/isa/arm"
	"powerfits/internal/kernels"
	"powerfits/internal/power"
	"powerfits/internal/profile"
	"powerfits/internal/program"
	"powerfits/internal/sim"
	"powerfits/internal/sweep"
	"powerfits/internal/synth"
	"powerfits/internal/tracing"
	"powerfits/internal/translate"
)

// ---- Shared preparation (synthesis is deterministic; prepare once) ----

var (
	prepOnce   sync.Once
	prepSetups []*sim.Setup
	prepErr    error
)

func preparedSetups(b *testing.B) []*sim.Setup {
	b.Helper()
	prepOnce.Do(func() {
		for _, k := range kernels.All() {
			s, err := sim.Prepare(k, 1, synth.DefaultOptions())
			if err != nil {
				prepErr = err
				return
			}
			prepSetups = append(prepSetups, s)
		}
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepSetups
}

// runConfigs re-measures the timing/power results the figure needs.
func runConfigs(b *testing.B, setups []*sim.Setup, cfgs ...sim.Config) *experiments.Suite {
	b.Helper()
	suite := &experiments.Suite{
		Setups:  setups,
		Results: make(map[string]map[string]*sim.Result),
		Cal:     power.DefaultCalibration(),
		Chip:    power.DefaultChipModel(),
	}
	for _, s := range setups {
		m := make(map[string]*sim.Result, len(cfgs))
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, suite.Cal)
			if err != nil {
				b.Fatal(err)
			}
			m[cfg.Name] = r
		}
		suite.Results[s.Kernel.Name] = m
	}
	return suite
}

func allConfigs() []sim.Config { return sim.Configs }

func vsBaseline() []sim.Config {
	return []sim.Config{sim.ARM16, sim.ARM8, sim.FITS16, sim.FITS8}
}

// benchFigure regenerates one figure per iteration.
func benchFigure(b *testing.B, cfgs []sim.Config, table func(*experiments.Suite) *experiments.Table) {
	setups := preparedSetups(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite := runConfigs(b, setups, cfgs...)
		t := table(suite)
		// Per-benchmark figures carry one row per kernel; summary
		// tables (the headline) carry a single suite row.
		if len(t.Rows) != len(setups) && len(t.Rows) != 1 {
			b.Fatalf("figure %s covered %d/%d kernels", t.ID, len(t.Rows), len(setups))
		}
	}
}

// ---- One benchmark per paper figure ----

// BenchmarkFig03StaticMapping regenerates Figure 3 (static 1:1 mapping),
// re-running the ARM→FITS translation each iteration.
func BenchmarkFig03StaticMapping(b *testing.B) {
	setups := preparedSetups(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range setups {
			res, err := translate.Translate(s.Prog, s.Synth.Spec)
			if err != nil {
				b.Fatal(err)
			}
			if r := res.StaticMappingRate(); r < 0.8 {
				b.Fatalf("%s static mapping %.2f", s.Kernel.Name, r)
			}
		}
	}
}

// BenchmarkFig04DynamicMapping regenerates Figure 4 (dynamic mapping),
// re-profiling each kernel.
func BenchmarkFig04DynamicMapping(b *testing.B) {
	setups := preparedSetups(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range setups {
			prof, err := profile.Collect(s.Prog, 2e9)
			if err != nil {
				b.Fatal(err)
			}
			if r := s.Fits.DynamicMappingRate(prof.Dyn); r < 0.8 {
				b.Fatalf("%s dynamic mapping %.2f", s.Kernel.Name, r)
			}
		}
	}
}

// BenchmarkFig05CodeSize regenerates Figure 5 (ARM vs THUMB vs FITS
// code size), re-running both 16-bit encoders.
func BenchmarkFig05CodeSize(b *testing.B) {
	setups := preparedSetups(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range setups {
			ts, err := ThumbSize(s.Prog)
			if err != nil {
				b.Fatal(err)
			}
			res, err := translate.Translate(s.Prog, s.Synth.Spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Image.Size() >= s.ArmImage.Size() || ts.TotalBytes() <= 0 {
				b.Fatal("size ordering broken")
			}
		}
	}
}

// BenchmarkFig06PowerBreakdown regenerates Figure 6 (per-configuration
// power breakdown).
func BenchmarkFig06PowerBreakdown(b *testing.B) {
	benchFigure(b, allConfigs(), func(s *experiments.Suite) *experiments.Table {
		return s.Fig6(sim.ARM16)
	})
}

// BenchmarkFig07SwitchingSaving regenerates Figure 7.
func BenchmarkFig07SwitchingSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig7)
}

// BenchmarkFig08InternalSaving regenerates Figure 8.
func BenchmarkFig08InternalSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig8)
}

// BenchmarkFig09LeakageSaving regenerates Figure 9.
func BenchmarkFig09LeakageSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig9)
}

// BenchmarkFig10PeakSaving regenerates Figure 10.
func BenchmarkFig10PeakSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig10)
}

// BenchmarkFig11TotalCacheSaving regenerates Figure 11.
func BenchmarkFig11TotalCacheSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig11)
}

// BenchmarkFig12ChipSaving regenerates Figure 12.
func BenchmarkFig12ChipSaving(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Fig12)
}

// BenchmarkFig13MissRate regenerates Figure 13.
func BenchmarkFig13MissRate(b *testing.B) {
	benchFigure(b, allConfigs(), (*experiments.Suite).Fig13)
}

// BenchmarkFig14IPC regenerates Figure 14.
func BenchmarkFig14IPC(b *testing.B) {
	benchFigure(b, allConfigs(), (*experiments.Suite).Fig14)
}

// BenchmarkHeadline regenerates the abstract's headline averages.
func BenchmarkHeadline(b *testing.B) {
	benchFigure(b, vsBaseline(), (*experiments.Suite).Headline)
}

// ---- Substrate micro-benchmarks ----

// BenchmarkFunctionalSimulator measures raw interpreter throughput.
func BenchmarkFunctionalSimulator(b *testing.B) {
	p := kernels.MustGet("crc32").Build(1)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := cpu.RunFunctional(p, 2e9)
		if err != nil {
			b.Fatal(err)
		}
		instrs = m.InstrCount
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkTimingPipeline measures the cycle-accurate pipeline with
// cache and power models attached.
func BenchmarkTimingPipeline(b *testing.B) {
	s, err := sim.Prepare(kernels.MustGet("crc32"), 1, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cal := power.DefaultCalibration()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(sim.FITS8, cal); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSteadyState measures the predecoded timing loop in isolation:
// per-iteration construction (cache, meter, machine) runs with the timer
// stopped, so ns/op is the cost of one full pipeline run over the shared
// predecode table and allocs/op must be exactly 0 — the steady-state
// cycle loop performs no heap allocations (Machine.Output is pre-sized
// for the kernel's emitted words). cycles/s is the headline throughput
// the predecode layer is gated on (see DESIGN.md §9).
func benchSteadyState(b *testing.B, s *sim.Setup, cfg sim.Config) {
	cal := power.DefaultCalibration()
	pc := cpu.DefaultPipeConfig()
	prog, im, dec := s.Prog, s.ArmImage, s.ArmDecoded
	if cfg.ISA == sim.ISAFITS {
		prog, im, dec = s.Fits.Lowered, s.Fits.Image, s.FitsDecoded
	}
	var res cpu.PipeResult
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cache.MustNew(cfg.Cache)
		meter := power.MustNewMeter(cfg.Cache, cal)
		port := sim.NewFetchPort(c, meter, im, pc.BlockBytes)
		m := cpu.New(prog, cpu.ImageLayout(im))
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := cpu.RunPipelineInto(m, pc, port, dec, &res); err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// BenchmarkPipelineSteadyState is the pipeline's cycles/sec benchmark
// pair, one per ISA: the dominant inner loop of every experiment. ci.sh
// runs it with -benchtime=1x asserting 0 allocs/op, and
// `fitsbench -pipebench` emits its numbers as BENCH_pipeline.json so
// successive PRs can chart the perf trajectory.
func BenchmarkPipelineSteadyState(b *testing.B) {
	s, err := sim.Prepare(kernels.MustGet("crc32"), 1, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ARM16", func(b *testing.B) { benchSteadyState(b, s, sim.ARM16) })
	b.Run("FITS8", func(b *testing.B) { benchSteadyState(b, s, sim.FITS8) })
}

// benchTracedSteadyState is benchSteadyState through the tracing entry
// point: the same timing loop with an event sink attached (or the nil
// sink, which dispatches straight back into the untraced loop).
func benchTracedSteadyState(b *testing.B, s *sim.Setup, cfg sim.Config, mkSink func() tracing.EventSink) {
	cal := power.DefaultCalibration()
	pc := cpu.DefaultPipeConfig()
	prog, im, dec := s.Prog, s.ArmImage, s.ArmDecoded
	if cfg.ISA == sim.ISAFITS {
		prog, im, dec = s.Fits.Lowered, s.Fits.Image, s.FitsDecoded
	}
	var res cpu.PipeResult
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cache.MustNew(cfg.Cache)
		meter := power.MustNewMeter(cfg.Cache, cal)
		port := sim.NewFetchPort(c, meter, im, pc.BlockBytes)
		m := cpu.New(prog, cpu.ImageLayout(im))
		m.Output = make([]uint32, 0, 64)
		sink := mkSink()
		b.StartTimer()
		if err := cpu.RunPipelineTraced(m, pc, port, dec, &res, sink); err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// BenchmarkPipelineTraced measures the tracing entry point of the
// timing loop. NilSink is the overhead contract ci.sh gates: a nil
// sink must dispatch into the untraced loop and stay at 0 allocs/op
// (tracing costs an untraced run exactly one branch). Ring captures
// every event into a preallocated ring — the sink Emit path is itself
// allocation-free, so this too must report 0 allocs/op; its ns/op vs
// NilSink is the tracing overhead quoted in DESIGN.md §12.
func BenchmarkPipelineTraced(b *testing.B) {
	s, err := sim.Prepare(kernels.MustGet("crc32"), 1, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("NilSink", func(b *testing.B) {
		benchTracedSteadyState(b, s, sim.FITS8, func() tracing.EventSink { return nil })
	})
	b.Run("Ring", func(b *testing.B) {
		ring := tracing.MustNewRing(1 << 16)
		b.ResetTimer()
		benchTracedSteadyState(b, s, sim.FITS8, func() tracing.EventSink { return ring })
	})
}

// benchMachineRun measures the functional machine end to end over the
// crc32 kernel with machine construction outside the timer, so ns/op
// is one full program run and allocs/op must be exactly 0 on both
// execution paths (Machine.Output is pre-sized; the fault path builds
// nothing until a fault actually fires).
func benchMachineRun(b *testing.B, p *program.Program, l cpu.Layout, run func(*cpu.Machine) error) {
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := cpu.New(p, l)
		m.MaxInstrs = 2e9
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := run(m); err != nil {
			b.Fatal(err)
		}
		instrs += m.InstrCount
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkMachineSteadyState is the functional interpreter's
// instrs/sec benchmark trio: the legacy Step loop, the compiled
// micro-op table from cpu.Compile (DESIGN.md §10), and the
// superblock-fused executor (DESIGN.md §11). ci.sh runs it with
// -benchtime=1x asserting 0 allocs/op on all three paths, and
// `fitsbench -pipebench` emits the numbers into BENCH_pipeline.json so
// successive PRs chart the interpreter trajectory next to the
// pipeline's.
func BenchmarkMachineSteadyState(b *testing.B) {
	p := kernels.MustGet("crc32").Build(1)
	l := cpu.WordLayout(p.TextBase, len(p.Instrs))
	c := cpu.Compile(p, l)
	b.Run("Interpreted", func(b *testing.B) {
		benchMachineRun(b, p, l, (*cpu.Machine).Run)
	})
	b.Run("Compiled", func(b *testing.B) {
		benchMachineRun(b, p, l, func(m *cpu.Machine) error { return m.RunCompiled(c) })
	})
	b.Run("Superblock", func(b *testing.B) {
		benchMachineRun(b, p, l, func(m *cpu.Machine) error { return m.RunSuperblocks(c) })
	})
}

// BenchmarkSampledPipeline compares the sampled timing estimator
// against the full detailed pipeline it replaces, on one scale-1
// kernel and the paper's baseline configuration. The Sampled/Full
// ns/op ratio is the estimator's wall-clock win (the acceptance floor
// is 5× on a scale-1 kernel); accuracy is asserted separately by
// TestSampledAccuracy in internal/sim.
func BenchmarkSampledPipeline(b *testing.B) {
	s, err := sim.Prepare(kernels.MustGet("bitcount"), 1, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cal := power.DefaultCalibration()
	b.Run("Full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(sim.ARM16, cal); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Sampled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunSampled(sim.ARM16, cal, sim.SampleOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrepare measures sim.Prepare end to end — the profiling
// pass (which runs on the compiled table), synthesis, translation,
// both encoders and predecode — the per-kernel setup cost every
// experiment pays exactly once.
func BenchmarkPrepare(b *testing.B) {
	k := kernels.MustGet("crc32")
	opts := synth.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Prepare(k, 1, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize measures the full instruction-set synthesis flow
// (k-search, SIS closure, AIS fill, dictionary assignment).
func BenchmarkSynthesize(b *testing.B) {
	p := kernels.MustGet("gsm").Build(1)
	prof, err := profile.Collect(p, 2e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(prof, synth.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslate measures ARM→FITS translation and layout.
func BenchmarkTranslate(b *testing.B) {
	p := kernels.MustGet("jpeg").Build(1)
	prof, err := profile.Collect(p, 2e9)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := synth.Synthesize(prof, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(p, syn.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkARMAssemble measures the baseline 32-bit encoder.
func BenchmarkARMAssemble(b *testing.B) {
	p := kernels.MustGet("jpeg").Build(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arm.Assemble(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchPort measures the I-cache fetch hot path — cache lookup
// plus power accrual per fetched block — which must not allocate in the
// steady state (the port aliases the image text and reuses a per-port
// scratch buffer).
func BenchmarkFetchPort(b *testing.B) {
	s, err := sim.Prepare(kernels.MustGet("crc32"), 1, synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	pc := cpu.DefaultPipeConfig()
	c := cache.MustNew(cache.SA1100ICache())
	m := power.MustNewMeter(cache.SA1100ICache(), power.DefaultCalibration())
	port := sim.NewFetchPort(c, m, s.ArmImage, pc.BlockBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.FetchBlock(s.ArmImage.TextBase + uint32(i*4)&0xFC)
		port.Tick()
	}
}

// BenchmarkSuiteParallel regenerates the whole scale-1 suite through
// the parallel experiment engine at full parallelism — the
// cmd/fitsbench path, and the headline number for engine speedups.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunParallel(1, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSequential is BenchmarkSuiteParallel pinned to one
// worker, the baseline the engine's speedup is measured against.
func BenchmarkSuiteSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunParallel(1, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the set-associative LRU cache.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.SA1100ICache())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*4) & 0xFFFF)
	}
}

// BenchmarkPowerMeter measures the per-access/per-cycle energy model.
func BenchmarkPowerMeter(b *testing.B) {
	m := power.MustNewMeter(cache.SA1100ICache(), power.DefaultCalibration())
	block := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(uint32(i*4), block, false)
		m.Tick()
	}
}

// ---- Design-space exploration engine ----

// benchSweepGrid is a small real grid (8 points, crc32 at scale 1)
// shared by the sweep benchmarks.
func benchSweepGrid() sweep.Grid {
	g := sweep.DefaultGrid("crc32", 1)
	g.Ks = []int{5, 6}
	g.DictCaps = []int{16, 64}
	g.Caches = g.Caches[:2]
	return g
}

// BenchmarkSweep measures the exploration engine end to end: "cold"
// pays profile + synthesis + sampled simulation per point, "warm" runs
// the same grid against a populated store and must evaluate nothing —
// the ratio is the incremental layer's speedup.
func BenchmarkSweep(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		points := 0
		for i := 0; i < b.N; i++ {
			st := archive.NewStore(filepath.Join(b.TempDir(), strconv.Itoa(i)))
			res, err := sweep.Run(sweep.Options{Grid: benchSweepGrid(), Store: st, NoRefine: true})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Evaluated != res.Stats.Points {
				b.Fatalf("cold sweep reused %d points", res.Stats.ArchiveSkips)
			}
			points += res.Stats.Points
		}
		b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("warm", func(b *testing.B) {
		st := archive.NewStore(b.TempDir())
		if _, err := sweep.Run(sweep.Options{Grid: benchSweepGrid(), Store: st, NoRefine: true}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		points := 0
		for i := 0; i < b.N; i++ {
			res, err := sweep.Run(sweep.Options{Grid: benchSweepGrid(), Store: st, NoRefine: true})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Evaluated != 0 {
				b.Fatalf("warm sweep evaluated %d points", res.Stats.Evaluated)
			}
			points += res.Stats.Points
		}
		b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
	})
}
