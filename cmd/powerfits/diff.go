package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/archive"
	"powerfits/internal/experiments"
	"powerfits/internal/kernels"
	"powerfits/internal/metrics"
)

// diffOpts carries the diff command's flags.
type diffOpts struct {
	Base, New string // run IDs or file paths
	Dir       string // run-store directory
	Tol       float64
	TolFor    string // "prefix=tol,prefix=tol" overrides
	Live      bool   // run a fresh suite as the new side
	JSON      bool
	Jobs      int
	Top       int
}

// parseTolFor parses "-tol-for fig10=0.05,kernel=0.01" into the
// per-key-prefix tolerance map.
func parseTolFor(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		prefix, tolStr, ok := strings.Cut(pair, "=")
		if !ok || prefix == "" {
			return nil, fmt.Errorf("bad -tol-for entry %q (want prefix=tolerance)", pair)
		}
		tol, err := strconv.ParseFloat(tolStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -tol-for tolerance in %q: %v", pair, err)
		}
		out[prefix] = tol
	}
	return out, nil
}

// cmdDiff compares two archived runs (or an archive against a live
// suite) and reports whether the gate passed. The caller turns a false
// return into a nonzero exit — the CI contract.
func cmdDiff(o diffOpts) bool {
	if o.Base == "" {
		fatal(fmt.Errorf("diff requires -base <run-id|record.json>"))
	}
	st := archive.NewStore(o.Dir)
	base, err := st.Resolve(o.Base)
	if err != nil {
		fatal(err)
	}

	var rec *archive.Record
	switch {
	case o.Live:
		log.Info("running live suite for the new side", "scale", base.Scale)
		suite, serr := experiments.RunSuite(experiments.Options{
			Scale: base.Scale, Workers: o.Jobs, Log: log})
		if serr != nil {
			fatal(serr)
		}
		man := metrics.NewManifest("powerfits")
		rec = archive.FromSuite(man, suite, base.Scale)
		man.Finish()
	case o.New != "":
		rec, err = st.Resolve(o.New)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("diff requires -new <run-id|record.json> or -live"))
	}

	perKey, err := parseTolFor(o.TolFor)
	if err != nil {
		fatal(err)
	}
	d, err := archive.Compare(base, rec, archive.DiffOptions{RelTol: o.Tol, PerKey: perKey})
	if err != nil {
		fatal(err)
	}
	if o.JSON {
		blob, merr := json.MarshalIndent(d, "", "  ")
		if merr != nil {
			fatal(merr)
		}
		os.Stdout.Write(append(blob, '\n'))
	} else {
		d.Render(os.Stdout, o.Top)
	}
	return d.OK()
}

// cmdArchive either lists the run store or generates a suite and files
// its record under the deterministic run ID.
func cmdArchive(dir string, list bool, scale, jobs int) {
	st := archive.NewStore(dir)
	if list {
		recs, err := st.List()
		if err != nil {
			fatal(err)
		}
		if len(recs) == 0 {
			fmt.Printf("no runs in %s\n", st.Dir)
			return
		}
		fmt.Printf("%-18s %6s %-21s %8s %8s  %s\n",
			"run_id", "scale", "started", "figures", "kernels", "config")
		for _, r := range recs {
			started, cfg := "-", r.ConfigHash
			if r.Manifest != nil && r.Manifest.StartedAt != "" {
				started = r.Manifest.StartedAt
			}
			if len(cfg) > 12 {
				cfg = cfg[:12]
			}
			fmt.Printf("%-18s %6d %-21s %8d %8d  %s\n",
				r.RunID, r.Scale, started, len(r.Figures), len(r.Kernels), cfg)
		}
		return
	}

	man := metrics.NewManifest("powerfits")
	progress := experiments.LineProgress(func(line string) { cli.Rawln(line) })
	tele.Begin(len(kernels.All()))
	suite, err := experiments.RunSuite(experiments.Options{Scale: scale, Workers: jobs,
		Progress: experiments.MultiProgress(progress, tele.Progress()), Log: log})
	if err != nil {
		fatal(err)
	}
	tele.Finish(nil)
	rec := archive.FromSuite(man, suite, scale)
	man.Finish()
	path, err := st.Save(rec)
	if err != nil {
		fatal(err)
	}
	// Surface the store's size on the suite registry (and, live, on
	// /metrics) now that the record landed.
	if serr := st.PublishStats(suite.Metrics.Scope("archive")); serr != nil {
		log.Warn("archive store stats unavailable", "err", serr)
	}
	tele.Merge(suite.Metrics)
	fmt.Printf("archived run %s (scale %d, %d figures, %d kernel runs) to %s\n",
		rec.RunID, rec.Scale, len(rec.Figures), len(rec.Kernels), path)
}
