package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"powerfits/internal/power"
	"powerfits/internal/sim"
	"powerfits/internal/tracing"
)

// The trace and profile subcommands: cycle-level observability over one
// kernel × configuration run. `trace` captures the pipeline's event
// stream into a bounded ring and renders it as a Chrome trace-event
// document (chrome://tracing, Perfetto); `profile` folds the same
// stream onto basic blocks as fetch-energy and stall attribution, as a
// worst-first table or folded stacks for flamegraph tooling.

// configByName resolves one of the paper's four configuration names.
func configByName(name string) (sim.Config, error) {
	for _, c := range sim.Configs {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return sim.Config{}, fmt.Errorf("unknown config %q (want ARM16, ARM8, FITS16, FITS8)", name)
}

// runTraced executes the run with the sink attached (sampled or full
// pipeline), shared by trace and profile.
func runTraced(s *sim.Setup, cfg sim.Config, sample bool, sink tracing.EventSink) (*sim.Result, error) {
	cal := power.DefaultCalibration()
	if sample {
		return s.RunSampledTraced(cfg, cal, sim.SampleOptions{}, sink)
	}
	return s.RunTraced(cfg, cal, sink)
}

// cmdTrace generates the Chrome trace-event export.
func cmdTrace(s *sim.Setup, cfgName, out string, limit int, sample bool) {
	cfg, err := configByName(cfgName)
	if err != nil {
		fatal(err)
	}
	ring, err := tracing.NewRing(limit)
	if err != nil {
		fatal(err)
	}
	r, err := runTraced(s, cfg, sample, ring)
	if err != nil {
		fatal(err)
	}
	// Surface the ring's accounting as gauges when a telemetry server is
	// up, so a lingering /metrics scrape reports the capture.
	if tele != nil {
		ring.Publish(tele.Scope("tracing"))
	}
	meta := tracing.TraceMeta{Kernel: s.Kernel.Name, Config: cfg.Name,
		Total: ring.Total(), Dropped: ring.Dropped()}
	if out == "" {
		if err := tracing.WriteChromeTrace(os.Stdout, ring.Events(), meta); err != nil {
			fatal(err)
		}
	} else if err := tracing.WriteChromeTraceFile(out, ring.Events(), meta); err != nil {
		fatal(err)
	}
	dst := "stdout"
	if out != "" {
		dst = out
	}
	log.Info("trace captured", "kernel", s.Kernel.Name, "config", cfg.Name,
		"cycles", r.Pipe.Cycles, "events", ring.Total(), "captured", ring.Len(),
		"dropped", ring.Dropped(), "dest", dst)
}

// cmdTraceCheck validates an existing export against the schema this
// tool emits — the round-trip gate ci.sh runs on every build.
func cmdTraceCheck(path string) {
	doc, err := tracing.ValidateChromeTraceFile(path)
	if err != nil {
		fatal(err)
	}
	log.Info("valid chrome trace", "path", path, "records", len(doc.TraceEvents),
		"kernel", doc.OtherData["kernel"], "config", doc.OtherData["config"])
}

// cmdProfile runs the attribution profiler and renders the result.
func cmdProfile(s *sim.Setup, cfgName string, top int, folded bool, out string, sample bool) {
	cfg, err := configByName(cfgName)
	if err != nil {
		fatal(err)
	}
	prof, err := s.NewProfiler(cfg)
	if err != nil {
		fatal(err)
	}
	r, err := runTraced(s, cfg, sample, prof)
	if err != nil {
		fatal(err)
	}
	// Conservation is the profiler's contract: the attributed total must
	// be bit-identical to the meter's access-energy sum.
	if prof.TotalPJ() != r.AccessPJ {
		fatal(fmt.Errorf("profile: attribution lost energy: %.6f pJ attributed vs %.6f pJ metered",
			prof.TotalPJ(), r.AccessPJ))
	}

	w := bufio.NewWriter(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if folded {
		root := fmt.Sprintf("%s;%s", s.Kernel.Name, cfg.Name)
		if err := prof.WriteFolded(w, root); err != nil {
			fatal(err)
		}
		return
	}

	rows := prof.Table(top)
	fmt.Fprintf(w, "energy attribution: %s on %s (%.2f µJ fetch energy over %d cycles; conservation exact)\n",
		s.Kernel.Name, cfg.Name, prof.TotalPJ()/1e6, r.Pipe.Cycles)
	fmt.Fprintf(w, "%4s %-14s %-19s %10s %8s %14s %7s %10s %11s\n",
		"#", "func", "block", "fetches", "misses", "fetch_pJ", "share", "stalls", "mispredicts")
	total := prof.TotalPJ()
	for i, st := range rows {
		blk := fmt.Sprintf("%08x-%08x", st.Addr, st.End)
		if st.Addr == 0 && st.End == 0 {
			blk = "-"
		}
		share := 0.0
		if total > 0 {
			share = 100 * st.FetchPJ / total
		}
		fmt.Fprintf(w, "%4d %-14s %-19s %10d %8d %14.1f %6.1f%% %10d %11d\n",
			i+1, st.Label, blk, st.Fetches, st.Misses, st.FetchPJ, share,
			st.StallCycles, st.Mispredicts)
	}
}
