package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"powerfits/internal/archive"
	"powerfits/internal/isa/fits"
	"powerfits/internal/kernels"
	"powerfits/internal/metrics"
	"powerfits/internal/sim"
	"powerfits/internal/synth"
)

// cmdExplain renders the synthesizer's decision log: why each
// signature earned (or lost) an opcode point, which closure round
// forced the SIS additions, and how the immediate-dictionary budget
// was spent. With -in it replays a previously archived trace record;
// otherwise it re-synthesizes the kernel with tracing attached.
func cmdExplain(kernelName string, scale, op int, savePath, inPath, dir string) {
	if inPath != "" {
		rec, err := archive.NewStore(dir).Resolve(inPath)
		if err != nil {
			fatal(err)
		}
		if len(rec.Traces) == 0 {
			fatal(fmt.Errorf("record %s holds no synthesis traces (create one with `powerfits explain -kernel K -save path.json`)", rec.RunID))
		}
		for i, tr := range rec.Traces {
			if i > 0 {
				fmt.Println()
			}
			renderTrace(os.Stdout, tr, "")
		}
		return
	}

	k, err := kernels.Get(kernelName)
	if err != nil {
		fatal(err)
	}
	opts := synth.DefaultOptions()
	opts.Trace = synth.NewTrace()
	s, err := sim.Prepare(k, scale, opts)
	if err != nil {
		fatal(err)
	}

	// -op N narrows the candidate listing to the signature occupying
	// opcode point N of the final spec (the numbering `powerfits isa`
	// prints).
	filterKey := ""
	if op >= 0 {
		pts := s.Synth.Spec.Points
		if op >= len(pts) {
			fatal(fmt.Errorf("opcode point %d out of range (spec has %d points)", op, len(pts)))
		}
		if pts[op].Kind != fits.PointSig {
			fatal(fmt.Errorf("opcode point %d is the EXT prefix, not a signature", op))
		}
		filterKey = pts[op].Sig.Key()
	}
	renderTrace(os.Stdout, opts.Trace, filterKey)

	if savePath != "" {
		man := metrics.NewManifest("powerfits")
		man.Kernel = s.Kernel.Name
		man.ISAPoint = fmt.Sprintf("k=%d, %d/%d opcode points, %d dictionary entries",
			s.Synth.K, s.Synth.Spec.UsedPoints(), 1<<s.Synth.K, s.Synth.DictEntries)
		rec := archive.FromTrace(man, opts.Trace, s.Synth.Spec.MarshalConfig(), s.Scale)
		man.Finish()
		if err := rec.WriteFile(savePath); err != nil {
			fatal(err)
		}
		log.Info("wrote trace record", "run_id", rec.RunID, "path", savePath)
	}
}

// renderTrace writes one synthesis trace: the opcode-width search, then
// the chosen width's full decision log. filterKey, when set, narrows
// the candidate table to one signature (by injective key).
func renderTrace(w io.Writer, tr *synth.Trace, filterKey string) {
	fmt.Fprintf(w, "synthesis trace: %s (total dynamic weight %d)\n", tr.Program, tr.TotalWeight)
	fmt.Fprintln(w, "opcode-width search:")
	for _, kt := range tr.Ks {
		if kt.Err != "" {
			fmt.Fprintf(w, "  k=%d  infeasible: %s\n", kt.K, kt.Err)
			continue
		}
		mark := ""
		if kt.K == tr.ChosenK {
			mark = "   <- chosen (lowest weighted cost)"
		}
		fmt.Fprintf(w, "  k=%d  cost %d weighted halfwords, %d/%d points, %d dict entries%s\n",
			kt.K, kt.Cost, kt.Points, kt.Capacity, kt.DictEntries, mark)
	}
	kt := tr.Chosen()
	if kt == nil {
		fmt.Fprintln(w, "no feasible opcode width")
		return
	}

	fmt.Fprintf(w, "\ndecision log for k=%d:\n", kt.K)
	if len(kt.Window) > 0 {
		fmt.Fprintf(w, "register window (narrow-field ranks): %s\n", strings.Join(kt.Window, " "))
	}
	for _, cr := range kt.Closure {
		fmt.Fprintf(w, "sis closure round %d: +%s\n", cr.Round, strings.Join(cr.Added, " +"))
	}

	fmt.Fprintf(w, "%4s %-26s %14s %7s %7s %-11s %s\n",
		"rank", "signature", "weight", "share", "values", "outcome", "note")
	shown := 0
	for _, c := range kt.Candidates {
		if filterKey != "" && c.Key != filterKey {
			continue
		}
		shown++
		share := 0.0
		if tr.TotalWeight > 0 {
			share = 100 * float64(c.Weight) / float64(tr.TotalWeight)
		}
		note := ""
		if c.Outcome == synth.OutcomeSIS && c.ClosureRound > 0 {
			note = fmt.Sprintf("forced by closure round %d", c.ClosureRound)
		}
		rank := "-"
		if c.Rank > 0 {
			rank = strconv.Itoa(c.Rank)
		}
		fmt.Fprintf(w, "%4s %-26s %14d %6.2f%% %7d %-11s %s\n",
			rank, c.Sig, c.Weight, share, c.Values, c.Outcome, note)
	}
	if shown == 0 {
		fmt.Fprintln(w, "(no candidate matches the requested opcode point)")
	}

	if filterKey == "" && len(kt.Dict) > 0 {
		fmt.Fprintln(w, "immediate-dictionary decisions (benefit in weighted EXT halfwords avoided):")
		for _, dd := range kt.Dict {
			verdict := "chosen"
			if !dd.Chosen {
				verdict = "skipped (value-storage cap)"
			}
			fmt.Fprintf(w, "  %-26s %4d entries, benefit %12d: %s\n", dd.Sig, dd.Entries, dd.Benefit, verdict)
		}
	}
	fmt.Fprintf(w, "final: %d/%d points used, cost %d weighted halfwords, %d dictionary entries\n",
		kt.Points, kt.Capacity, kt.Cost, kt.DictEntries)
}
