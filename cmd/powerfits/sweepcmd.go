package main

import (
	"fmt"
	"os"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/archive"
	"powerfits/internal/experiments"
	"powerfits/internal/metrics"
	"powerfits/internal/sweep"
	"powerfits/internal/synth"
)

// sweepOpts carries the sweep subcommand's flags.
type sweepOpts struct {
	Kernel    string
	Scale     int
	Ks        string
	Dicts     string
	Ablations string
	Caches    string
	Strategy  string
	Seed      int64
	Steps     int
	Fuel      int
	Jobs      int
	Exact     bool
	NoRefine  bool
	Dir       string
	Out       string
}

// cmdSweep runs the design-space exploration engine: a grid (or
// stochastic search) over synthesis and cache parameters, incremental
// against the run store, ending in the Pareto frontier of fetch energy
// vs code size vs cycles.
func cmdSweep(o sweepOpts) {
	grid := sweep.DefaultGrid(o.Kernel, o.Scale)
	var err error
	if o.Ks != "" {
		if grid.Ks, err = sweep.ParseInts(o.Ks); err != nil {
			fatal(err)
		}
	}
	if o.Dicts != "" {
		if grid.DictCaps, err = sweep.ParseInts(o.Dicts); err != nil {
			fatal(err)
		}
	}
	if o.Ablations != "" {
		if grid.Ablations, err = sweep.ParseAblations(o.Ablations); err != nil {
			fatal(err)
		}
	}
	if o.Caches != "" {
		if grid.Caches, err = sweep.ParseCaches(o.Caches); err != nil {
			fatal(err)
		}
	}
	strat, err := sweep.NewStrategy(o.Strategy, o.Seed, o.Steps)
	if err != nil {
		fatal(err)
	}

	total := grid.Size()
	if o.Fuel > 0 && o.Fuel < total {
		total = o.Fuel
	}
	tele.Begin(total)
	progress := experiments.MultiProgress(
		experiments.LineProgress(func(line string) { cli.Rawln(line) }),
		tele.Progress())
	var reg *metrics.Registry
	if tele != nil {
		reg = tele.Registry
	}

	res, err := sweep.Run(sweep.Options{
		Grid:     grid,
		Strategy: strat,
		Fuel:     o.Fuel,
		Workers:  o.Jobs,
		Exact:    o.Exact,
		NoRefine: o.NoRefine,
		Store:    archive.NewStore(o.Dir),
		Synth:    synth.DefaultOptions(),
		Progress: progress,
		Metrics:  reg,
		Log:      log,
	})
	tele.Finish(err)
	if err != nil {
		fatal(err)
	}

	res.FrontierTable().Render(os.Stdout)
	st := res.Stats
	fmt.Printf("\n%d points: %d evaluated, %d archive skips, %d infeasible; profile runs %d (memo hits %d); refined %d (+%d skips); %.2fs\n",
		st.Points, st.Evaluated, st.ArchiveSkips, st.Infeasible,
		st.ProfileRuns, st.MemoHits, st.Refined, st.RefineSkips, st.WallSec)

	if o.Out != "" {
		if err := res.Document().WriteFile(o.Out); err != nil {
			fatal(err)
		}
		log.Info("wrote sweep document", "path", o.Out, "points", st.Points, "frontier", len(res.Frontier))
	}
}
