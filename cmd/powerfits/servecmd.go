package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerfits/internal/archive"
	"powerfits/internal/metrics"
	"powerfits/internal/serve"
	"powerfits/internal/sim"
)

// serveOpts carries the serve subcommand's flags.
type serveOpts struct {
	Addr         string // -addr: listen address (port 0 = ephemeral)
	AddrFile     string // -telemetry-addrfile: handshake file for scripts
	Dir          string // -dir: archive store backing the durable cache tier
	Workers      int    // -j: concurrent cold computations
	Queue        int    // -queue: bounded accept queue beyond the workers
	CacheEntries int    // -cache-entries: in-memory result LRU bound
	BatchWindow  time.Duration
}

// cmdServe runs the synthesis daemon until SIGINT/SIGTERM, then drains:
// new requests get 503 while in-flight ones finish under the
// http.Server.Shutdown grace period.
func cmdServe(o serveOpts) {
	svc := serve.New(serve.Options{
		Workers:      o.Workers,
		Queue:        o.Queue,
		BatchWindow:  o.BatchWindow,
		CacheEntries: o.CacheEntries,
		Store:        archive.NewStore(o.Dir),
		Registry:     metrics.NewRegistry(),
		Log:          log,
	})

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		fatal(err)
	}
	if o.AddrFile != "" {
		// The same handshake contract the telemetry server offers:
		// scripts start us on port 0 and poll this file for the bound
		// address.
		if werr := os.WriteFile(o.AddrFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			fatal(werr)
		}
	}
	log.Info("powerfits serve listening", "addr", ln.Addr().String())

	srv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	case err := <-errCh:
		fatal(err)
	}

	svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Warn("shutdown grace period expired", "err", err)
	}
	hits, storeHits, misses := svc.CacheStats()
	fmt.Printf("served: %d memory hits, %d store hits, %d cold computations\n",
		hits, storeHits, misses)
}

// callOpts carries the call subcommand's flags — one request, rendered
// to stdout or -o.
type callOpts struct {
	URL     string
	Kernel  string
	Scale   int
	Config  string
	Sample  bool
	File    string // -file: assembly source instead of a named kernel
	Out     string // -o: write the response body here (default stdout)
	Timeout time.Duration
}

// buildRequest lowers call/loadgen flags onto a serve.Request.
func buildRequest(kernel, file string, scale int, cfg string, sample bool) (serve.Request, error) {
	req := serve.Request{Scale: scale, Sampled: sample}
	if cfg != "" {
		req.Configs = []string{cfg}
	}
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return req, err
		}
		req.Asm = string(src)
		req.Name = file
	} else {
		req.Kernel = kernel
	}
	return req, nil
}

// cmdCall POSTs one synthesis request to a running daemon.
func cmdCall(o callOpts) {
	if o.URL == "" {
		fatal(fmt.Errorf("call requires -url http://host:port/synth"))
	}
	req, err := buildRequest(o.Kernel, o.File, o.Scale, o.Config, o.Sample)
	if err != nil {
		fatal(err)
	}
	blob, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, o.URL, bytes.NewReader(blob))
	if err != nil {
		fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("daemon answered %s: %s", resp.Status, bytes.TrimSpace(body)))
	}
	log.Info("synthesis response",
		"cache", resp.Header.Get("X-Powerfits-Cache"),
		"run_id", resp.Header.Get("X-Powerfits-Run"),
		"bytes", len(body))
	writeBody(o.Out, body)
}

// cmdLoadgen drives a closed-loop load against a daemon and prints the
// throughput/latency report.
func cmdLoadgen(o serve.LoadOptions, jsonOut string) {
	if o.URL == "" {
		fatal(fmt.Errorf("loadgen requires -url http://host:port/synth"))
	}
	rep, err := serve.RunLoad(context.Background(), o)
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)
	if jsonOut != "" {
		blob, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fatal(merr)
		}
		writeBody(jsonOut, append(blob, '\n'))
	}
	if rep.Errors > 0 {
		fatal(fmt.Errorf("%d corrupted or failed responses; first: %s", rep.Errors, rep.FirstError))
	}
}

// serveLoadOptions lowers loadgen flags onto serve.LoadOptions.
func serveLoadOptions(url string, workers, n int, dur time.Duration, hit float64,
	kernel string, scale int, sample bool, seed int64) serve.LoadOptions {
	return serve.LoadOptions{
		URL:         url,
		Workers:     workers,
		Requests:    n,
		Duration:    dur,
		HitFraction: hit,
		Kernel:      kernel,
		Scale:       scale,
		Sampled:     sample,
		Seed:        seed,
		CheckBodies: true,
	}
}

// writeReportFromSetup renders the canonical serve report for a
// prepared setup — the same canonicalize→evaluate path the daemon's
// cold tier runs, so `powerfits run -o` writes bytes identical to what
// a default daemon serves for the same request (ci.sh's equivalence
// check).
func writeReportFromSetup(s *sim.Setup, cfgName string, sample bool, out string) {
	req := serve.Request{Kernel: s.Kernel.Name, Scale: s.Scale,
		Configs: []string{cfgName}, Sampled: sample}
	c, err := serve.Canonicalize(req, serve.DefaultCalBlob())
	if err != nil {
		fatal(err)
	}
	body, _, err := c.Evaluate(s)
	if err != nil {
		fatal(err)
	}
	writeBody(out, body)
	log.Info("wrote synthesis report", "path", out, "run_id", c.RunID)
}

func writeBody(path string, body []byte) {
	if path == "" || path == "-" {
		if _, err := os.Stdout.Write(body); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		fatal(err)
	}
}
