package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"powerfits/internal/telemetry"
)

// cmdScrape fetches one telemetry endpoint and validates the payload:
// by default the body must strictly parse as Prometheus text format
// v0.0.4 (the /metrics conformance gate ci.sh runs against a live
// server); with -health it must be a /healthz JSON document reporting
// status "ok". -o writes the raw body to a file ("-" for stdout) so a
// scrape can double as a capture.
func cmdScrape(url, out string, health bool) {
	if url == "" {
		fatal(fmt.Errorf("scrape requires -url http://host:port/metrics (or /healthz with -health)"))
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("scrape %s: status %s", url, resp.Status))
	}

	if health {
		var doc struct {
			Status   string                  `json:"status"`
			Progress telemetry.ProgressState `json:"progress"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			fatal(fmt.Errorf("scrape %s: not a healthz document: %w", url, err))
		}
		if doc.Status != "ok" {
			fatal(fmt.Errorf("scrape %s: status %q, want ok", url, doc.Status))
		}
		log.Info("healthz ok", "url", url,
			"phase", doc.Progress.Phase, "done", doc.Progress.Done, "total", doc.Progress.Total)
	} else {
		parsed, err := telemetry.ParseExposition(body)
		if err != nil {
			fatal(fmt.Errorf("scrape %s: invalid exposition: %w", url, err))
		}
		log.Info("valid exposition", "url", url,
			"families", len(parsed.Families), "samples", parsed.Samples(), "bytes", len(body))
	}

	switch out {
	case "":
	case "-":
		if _, err := os.Stdout.Write(body); err != nil {
			fatal(err)
		}
	default:
		if err := os.WriteFile(out, body, 0o644); err != nil {
			fatal(err)
		}
		log.Info("wrote scrape body", "path", out)
	}
}
