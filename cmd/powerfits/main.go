// Command powerfits drives the FITS design flow over one benchmark:
// inspect the suite, synthesize an instruction set, disassemble the ARM
// and FITS binaries, and run timing/power simulations.
//
// Usage:
//
//	powerfits list
//	powerfits info   -kernel crc32
//	powerfits isa    -kernel crc32           # the synthesized ISA (cf. paper Fig. 2)
//	powerfits disasm -kernel crc32 [-fits]
//	powerfits dump   -kernel crc32           # assembly text (re-assembles with `asm`)
//	powerfits run    -kernel crc32 [-config FITS8] [-scale N]
//	                 [-sample] [-superblocks]        # sampled timing / fused profiling
//	                 [-metrics out.json] [-phases out.csv] [-window N]
//	                 [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace run.trace]
//	powerfits report -in out.json [-top N]          # render a -metrics export
//	powerfits trace  -kernel crc32 [-config FITS8] [-scale N] [-sample]
//	                 [-o trace.json] [-limit N]     # Chrome trace-event export of the cycle loop
//	powerfits trace  -check -in trace.json          # validate a trace export's schema
//	powerfits profile -kernel crc32 [-config FITS8] [-scale N] [-sample]
//	                  [-top N] [-folded] [-o out]   # PC→block energy/stall attribution
//	powerfits asm    -file prog.s [-config FITS8]   # assemble + full flow + run
//	powerfits sweep  -kernel jpeg [-j N]            # design-space exploration → Pareto frontier
//	                 [-ks 4,5,6] [-dicts 16,64,256] [-ablations full|all|name,...]
//	                 [-caches 4K,8K,16K[:LINE:ASSOC]] [-strategy grid|random|anneal]
//	                 [-seed N] [-steps N] [-fuel N] [-exact] [-no-refine]
//	                 [-dir runs/] [-o sweep.json]   # incremental vs the run store
//	powerfits config -kernel crc32 > crc32.cfg      # the decoder-configuration image
//	powerfits archive [-scale N] [-dir runs/] [-list]      # archive a suite run / list the store
//	powerfits diff -base <id|file> [-new <id|file>|-live]  # regression-gate two archived runs
//	               [-tol F] [-tol-for k=v,...] [-json]     # (exits 1 on regression)
//	powerfits explain -kernel crc32 [-op N] [-save t.json] # synthesis decision log
//	powerfits explain -in <id|file>                        # replay an archived trace
//	powerfits scrape -url http://host:port/metrics [-o out]  # fetch + strict-parse a live exposition
//	powerfits scrape -url http://host:port/healthz -health   # liveness probe
//	powerfits serve  [-addr host:port] [-j N] [-queue N]     # synthesis daemon: POST /synth
//	                 [-batch-window D] [-cache-entries N] [-dir runs/]
//	powerfits call   -url http://host:port/synth [-kernel crc32|-file prog.s]
//	                 [-scale N] [-config FITS8] [-sample] [-o report.json]
//	powerfits loadgen -url http://host:port/synth [-j N] [-n N|-duration D]
//	                  [-hit F] [-kernel crc32] [-scale N] [-sample] [-o report.json]
//
// Every subcommand also accepts -log-level/-log-json (structured run
// logging) and -telemetry addr (serve /metrics, /healthz, /progress,
// /debug/pprof for the duration of the command).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/asm"
	"powerfits/internal/experiments"
	"powerfits/internal/isa/fits"
	"powerfits/internal/kernels"
	"powerfits/internal/metrics"
	"powerfits/internal/power"
	"powerfits/internal/program"
	"powerfits/internal/sim"
	"powerfits/internal/synth"
)

func usage() {
	cli.Rawln("usage: powerfits <list|info|isa|disasm|dump|run|report|trace|profile|asm|sweep|config|archive|diff|explain|scrape|serve|call|loadgen> [flags]")
	os.Exit(2)
}

// log is the run logger; set in main right after flag parsing.
var log *slog.Logger

// tele is the embedded telemetry server (nil without -telemetry).
var tele *cli.Telemetry

// stopProfiles flushes any active -cpuprofile/-memprofile/-trace
// output; fatal routes through it so profiles survive error exits.
var stopProfiles = func() error { return nil }

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	kernel := fs.String("kernel", "crc32", "benchmark name (see `powerfits list`)")
	scale := fs.Int("scale", 1, "workload scale (0 = kernel default)")
	cfgName := fs.String("config", "FITS8", "configuration: ARM16, ARM8, FITS16, FITS8")
	fitsSide := fs.Bool("fits", false, "disassemble the FITS translation instead of ARM")
	file := fs.String("file", "", "assembly source file (asm command)")
	jobs := fs.Int("j", 0, "parallel workers for sweep (0 = all cores, 1 = sequential)")
	sweepKs := fs.String("ks", "", "sweep opcode-width axis, e.g. 4,5,6 (0 = search; default 4,5,6)")
	sweepDicts := fs.String("dicts", "", "sweep dictionary-budget axis, e.g. 16,64,256")
	sweepAbl := fs.String("ablations", "", "sweep ablation axis: full, nodict, nowin, no2op, nobase, or all")
	sweepCaches := fs.String("caches", "", "sweep cache-geometry axis, e.g. 4K,8K,16K or 8K:16:4")
	strategy := fs.String("strategy", "grid", "sweep visit order: grid, random, anneal")
	seed := fs.Int64("seed", 1, "seed for stochastic sweep strategies")
	steps := fs.Int("steps", 0, "step budget for stochastic strategies (0 = strategy default)")
	fuel := fs.Int("fuel", 0, "bound on sweep points visited (0 = whole grid)")
	exact := fs.Bool("exact", false, "sweep with full pipeline runs instead of the sampled estimator")
	noRefine := fs.Bool("no-refine", false, "skip the exact re-run of sweep frontier points")
	metricsPath := fs.String("metrics", "", "write manifest + registry + phase series as JSON (run command)")
	phasesPath := fs.String("phases", "", "write the per-window phase series as CSV (run command)")
	window := fs.Int("window", 4096, "phase-sample window in cycles (run command)")
	topN := fs.Int("top", 10, "hotspot rows to render (report command)")
	inPath := fs.String("in", "", "metrics JSON to render (report command)")
	baseArg := fs.String("base", "", "baseline run: a run ID or a record file (diff command)")
	newArg := fs.String("new", "", "candidate run: a run ID or a record file (diff command)")
	live := fs.Bool("live", false, "diff against a freshly generated suite at the baseline's scale")
	tol := fs.Float64("tol", 0, "relative tolerance for diff classification (0 = 1e-6)")
	tolFor := fs.String("tol-for", "", "per-key tolerance overrides, e.g. fig10=0.05,kernel=0.01 (diff command)")
	jsonOut := fs.Bool("json", false, "emit the diff as JSON (diff command)")
	dir := fs.String("dir", "", "run-store directory (default .powerfits/runs)")
	listRuns := fs.Bool("list", false, "list the archived runs (archive command)")
	savePath := fs.String("save", "", "archive the synthesis trace to this file (explain command)")
	opN := fs.Int("op", -1, "explain one opcode point of the final spec (explain command)")
	superblocks := fs.Bool("superblocks", false, "profile through the fused superblock executor (identical profile, faster preparation)")
	sample := fs.Bool("sample", false, "use the sampled timing estimator instead of a full pipeline run (run/asm/trace/profile commands)")
	outPath := fs.String("o", "", "output path (trace/profile commands; default stdout)")
	limit := fs.Int("limit", 1<<16, "event ring capacity: the trace keeps the most recent N events (trace command)")
	folded := fs.Bool("folded", false, "emit the profile as folded stacks for flamegraph tooling (profile command)")
	check := fs.Bool("check", false, "validate an existing trace export instead of generating one (trace command, with -in)")
	cpuProf := fs.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProf := fs.String("memprofile", "", "write a pprof heap profile to this path")
	traceOut := fs.String("trace", "", "write a runtime/trace execution trace to this path")
	url := fs.String("url", "", "telemetry endpoint to fetch (scrape command) or daemon /synth endpoint (call/loadgen)")
	health := fs.Bool("health", false, "treat the response as a /healthz JSON document instead of a Prometheus exposition (scrape command)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address for the synthesis daemon (port 0 = ephemeral; serve command)")
	queue := fs.Int("queue", 0, "bounded accept queue beyond the worker pool, 429 past it (0 = 4×workers; serve command)")
	batchWindow := fs.Duration("batch-window", 0, "hold each preparation open so near-simultaneous requests share it (serve command)")
	cacheEntries := fs.Int("cache-entries", 0, "in-memory result-cache entries (0 = 512; serve command)")
	duration := fs.Duration("duration", 5*time.Second, "load duration when -n is 0 (loadgen command)")
	hitFrac := fs.Float64("hit", 0.9, "fraction of loadgen requests drawn from the fixed hot request (loadgen command)")
	nReqs := fs.Int("n", 0, "total loadgen requests (0 = run for -duration; loadgen command)")
	callTimeout := fs.Duration("timeout", 2*time.Minute, "request timeout (call command)")
	tf := cli.RegisterFlags(fs)
	log = cli.Parse("powerfits", fs, tf, os.Args[2:])

	var err error
	tele, err = tf.Start(log, nil)
	if err != nil {
		fatal(err)
	}
	defer tele.Close()

	if cmd == "scrape" {
		cmdScrape(*url, *outPath, *health)
		return
	}

	switch cmd {
	case "serve":
		cmdServe(serveOpts{Addr: *addr, AddrFile: tf.TelemetryAddrFile, Dir: *dir,
			Workers: *jobs, Queue: *queue, CacheEntries: *cacheEntries, BatchWindow: *batchWindow})
		return
	case "call":
		cmdCall(callOpts{URL: *url, Kernel: *kernel, Scale: *scale, Config: *cfgName,
			Sample: *sample, File: *file, Out: *outPath, Timeout: *callTimeout})
		return
	case "loadgen":
		cmdLoadgen(serveLoadOptions(*url, *jobs, *nReqs, *duration, *hitFrac,
			*kernel, *scale, *sample, *seed), *outPath)
		return
	}

	stop, err := metrics.StartProfiles(metrics.ProfileConfig{
		CPUProfile: *cpuProf, MemProfile: *memProf, Trace: *traceOut})
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop

	switch cmd {
	case "list":
		fmt.Printf("%-18s %-12s %s\n", "kernel", "group", "default scale")
		for _, k := range kernels.All() {
			fmt.Printf("%-18s %-12s %d\n", k.Name, k.Group, k.DefaultScale)
		}
		finish()
		return
	case "report":
		if *inPath == "" {
			fatal(fmt.Errorf("report requires -in metrics.json"))
		}
		report(*inPath, *topN)
		finish()
		return
	case "archive":
		cmdArchive(*dir, *listRuns, *scale, *jobs)
		finish()
		return
	case "diff":
		ok := cmdDiff(diffOpts{Base: *baseArg, New: *newArg, Dir: *dir, Tol: *tol,
			TolFor: *tolFor, Live: *live, JSON: *jsonOut, Jobs: *jobs, Top: *topN})
		finish()
		if !ok {
			tele.Close()
			os.Exit(1)
		}
		return
	case "explain":
		cmdExplain(*kernel, *scale, *opN, *savePath, *inPath, *dir)
		finish()
		return
	case "sweep":
		cmdSweep(sweepOpts{
			Kernel: *kernel, Scale: *scale,
			Ks: *sweepKs, Dicts: *sweepDicts, Ablations: *sweepAbl, Caches: *sweepCaches,
			Strategy: *strategy, Seed: *seed, Steps: *steps, Fuel: *fuel, Jobs: *jobs,
			Exact: *exact, NoRefine: *noRefine, Dir: *dir, Out: *outPath,
		})
		finish()
		return
	}

	if cmd == "trace" && *check {
		if *inPath == "" {
			fatal(fmt.Errorf("trace -check requires -in trace.json"))
		}
		cmdTraceCheck(*inPath)
		finish()
		return
	}

	var s *sim.Setup
	if cmd == "asm" {
		if *file == "" {
			fatal(fmt.Errorf("asm requires -file"))
		}
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		p, perr := asm.Parse(*file, string(src))
		if perr != nil {
			fatal(perr)
		}
		s, err = sim.PrepareWith(userKernel(p), 1, sim.PrepareOptions{
			Synth: synth.DefaultOptions(), Superblocks: *superblocks, Log: log})
	} else {
		k, kerr := kernels.Get(*kernel)
		if kerr != nil {
			fatal(kerr)
		}
		s, err = sim.PrepareWith(k, *scale, sim.PrepareOptions{
			Synth: synth.DefaultOptions(), Superblocks: *superblocks, Log: log})
	}
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "info":
		info(s)
	case "isa":
		printISA(s)
	case "disasm":
		disasm(s, *fitsSide)
	case "dump":
		fmt.Print(asm.Format(s.Prog))
	case "run":
		run(s, *cfgName, runOutputs{Metrics: *metricsPath, Phases: *phasesPath, Window: *window, Sample: *sample})
		if *outPath != "" {
			writeReportFromSetup(s, *cfgName, *sample, *outPath)
		}
	case "trace":
		cmdTrace(s, *cfgName, *outPath, *limit, *sample)
	case "profile":
		cmdProfile(s, *cfgName, *topN, *folded, *outPath, *sample)
	case "asm":
		info(s)
		fmt.Println()
		run(s, *cfgName, runOutputs{Metrics: *metricsPath, Phases: *phasesPath, Window: *window, Sample: *sample})
	case "config":
		blob := s.Synth.Spec.MarshalConfig()
		if _, err := os.Stdout.Write(blob); err != nil {
			fatal(err)
		}
		log.Info("wrote decoder configuration", "bytes", len(blob))
	default:
		usage()
	}
	finish()
}

// finish flushes the profiling hooks on the success path.
func finish() {
	if err := stopProfiles(); err != nil {
		log.Error("flushing profiles failed", "err", err)
		os.Exit(1)
	}
}

// userKernel wraps a parsed program as a one-off kernel.
func userKernel(p *program.Program) kernels.Kernel {
	return kernels.Kernel{
		Name:         p.Name,
		Group:        "user",
		Build:        func(int) *program.Program { return p },
		Ref:          func(int) []uint32 { return nil },
		DefaultScale: 1,
	}
}

func fatal(err error) {
	if perr := stopProfiles(); perr != nil {
		log.Error("flushing profiles failed", "err", perr)
	}
	tele.Finish(err)
	tele.CloseNow()
	log.Error("powerfits failed", "err", err)
	os.Exit(1)
}

func info(s *sim.Setup) {
	armB := s.ArmImage.Size()
	fmt.Printf("kernel          %s (%s), scale %d\n", s.Kernel.Name, s.Kernel.Group, s.Scale)
	fmt.Printf("instructions    %d static, %d dynamic\n", len(s.Prog.Instrs), s.Profile.TotalDyn)
	fmt.Printf("ARM image       %d bytes (%d literal-pool)\n", armB, s.ArmImage.PoolBytes)
	fmt.Printf("THUMB estimate  %d bytes (%.1f%% of ARM)\n", s.Thumb.TotalBytes(),
		100*float64(s.Thumb.TotalBytes())/float64(armB))
	fmt.Printf("FITS image      %d bytes (%.1f%% of ARM)\n", s.Fits.Image.Size(),
		100*float64(s.Fits.Image.Size())/float64(armB))
	fmt.Printf("mapping         %.1f%% static 1:1, %.1f%% dynamic 1:1\n",
		100*s.Fits.StaticMappingRate(), 100*s.Fits.DynamicMappingRate(s.Profile.Dyn))
	fmt.Printf("synthesized ISA k=%d, %d/%d opcode points (BIS %d, SIS %d, AIS %d), %d dictionary entries\n",
		s.Synth.K, s.Synth.Spec.UsedPoints(), 1<<s.Synth.K,
		len(s.Synth.BIS), len(s.Synth.SIS), len(s.Synth.AIS), s.Synth.DictEntries)
	fmt.Printf("decoder config  %d bytes of non-volatile state\n", s.Synth.Spec.ConfigBytes())
	disp := s.Synth.Spec.DispBits()
	fmt.Printf("branch reach    %.1f%% of branches fit the %d-bit displacement field\n",
		100*s.Profile.DispCoverage(disp-1), disp)
	for kk, c := range s.Synth.CandidateCost {
		fmt.Printf("  k=%d cost %d halfwords (weighted)\n", kk, c)
	}
	for kk, e := range s.Synth.CandidateErr {
		fmt.Printf("  k=%d infeasible: %s\n", kk, e)
	}
}

func printISA(s *sim.Setup) {
	sp := s.Synth.Spec
	fmt.Printf("synthesized instruction set for %s: %d-bit opcodes, %d points\n",
		sp.Name, sp.K, sp.UsedPoints())

	// The paper's Figure 2: bit layouts of the synthesized formats.
	k := sp.K
	narrow := 16 - k - 8
	wide := 16 - k - 4
	full := 16 - k
	fmt.Println("instruction formats (field widths in bits):")
	fmt.Printf("  operate-3   [op:%d][rc:4][ra:4][oprd:%d]\n", k, narrow)
	fmt.Printf("  operate-2   [op:%d][rc:4][lit:%d]\n", k, wide)
	fmt.Printf("  memory      [op:%d][ra:4][rb:4][imm:%d]  (scaled)\n", k, narrow)
	fmt.Printf("  memory-wide [op:%d][ra:4][imm:%d]  (base register in opcode)\n", k, wide)
	fmt.Printf("  branch      [op:%d][disp:%d]  (signed halfwords)\n", k, full)
	fmt.Printf("  trap        [op:%d][number:%d]\n", k, full)
	fmt.Printf("  ext prefix  [op:%d][payload:%d]\n", k, full)
	if len(sp.Window) > 0 {
		regs := make([]string, 0, len(sp.Window))
		for _, r := range sp.Window {
			regs = append(regs, r.String())
		}
		fmt.Printf("register window (narrow-field ranks): %s\n", strings.Join(regs, " "))
	}
	fmt.Printf("%-4s %-26s %-10s %s\n", "op", "signature", "mode", "values")
	for i, pt := range sp.Points {
		switch pt.Kind {
		case fits.PointExt:
			fmt.Printf("%-4d %-26s\n", i, "EXT (prefix)")
		case fits.PointSig:
			mode := "inline"
			vals := ""
			if pt.ImmDict {
				mode = "dict"
				parts := make([]string, 0, len(pt.Values))
				for _, v := range pt.Values {
					parts = append(parts, fmt.Sprint(v))
				}
				vals = strings.Join(parts, ",")
				if len(vals) > 60 {
					vals = vals[:57] + "..."
				}
			}
			fmt.Printf("%-4d %-26s %-10s %s\n", i, pt.Sig, mode, vals)
		}
	}
}

func disasm(s *sim.Setup, fitsSide bool) {
	if fitsSide {
		im := s.Fits.Image
		for i := range s.Fits.Lowered.Instrs {
			in := &s.Fits.Lowered.Instrs[i]
			fmt.Printf("%08x:  %-6s  %s\n", im.InstrAddr[i],
				fmt.Sprintf("%dB", im.InstrSize[i]), in)
		}
		return
	}
	im := s.ArmImage
	for i := range s.Prog.Instrs {
		in := &s.Prog.Instrs[i]
		fmt.Printf("%08x:  %s\n", im.InstrAddr[i], in)
	}
}

// runOutputs carries the run command's export requests.
type runOutputs struct {
	Metrics string // -metrics: JSON export path
	Phases  string // -phases: CSV phase-series path
	Window  int    // -window: sample window in cycles
	Sample  bool   // -sample: sampled timing estimator
}

func run(s *sim.Setup, cfgName string, out runOutputs) {
	cfg, err := configByName(cfgName)
	if err != nil {
		fatal(err)
	}
	man := metrics.NewManifest("powerfits")
	cal := power.DefaultCalibration()
	tele.Begin(1)
	started := time.Now()
	var r *sim.Result
	if out.Sample {
		if out.Metrics != "" || out.Phases != "" {
			fatal(fmt.Errorf("-sample is incompatible with -metrics/-phases: phase series require a full detailed run"))
		}
		r, err = s.RunSampled(cfg, cal, sim.SampleOptions{})
	} else {
		var opt sim.ObserveOptions
		if out.Metrics != "" || out.Phases != "" {
			opt.WindowCycles = out.Window
		}
		r, err = s.RunObserved(cfg, cal, opt)
	}
	if err != nil {
		fatal(err)
	}
	if tele != nil {
		publishRun(tele.Scope("run", s.Kernel.Name, cfg.Name), r)
		tele.Publish(experiments.ProgressEvent{Kernel: s.Kernel.Name, Done: 1, Total: 1,
			DynInstrs: r.Pipe.Instrs, Elapsed: time.Since(started)})
		tele.Finish(nil)
	}
	if out.Metrics != "" || out.Phases != "" {
		exportRun(s, cfg, cal, r, man, out)
	}
	sw, in, lk := r.Power.Share()
	fmt.Printf("config          %s (%s ISA, %d KB I-cache)\n", cfg.Name, cfg.ISA, cfg.Cache.SizeBytes/1024)
	fmt.Printf("instructions    %d\n", r.Pipe.Instrs)
	fmt.Printf("cycles          %d (IPC %.3f)\n", r.Pipe.Cycles, r.Pipe.IPC())
	fmt.Printf("fetch accesses  %d (%d misses, %.1f per million)\n",
		r.Cache.Accesses, r.Cache.Misses, r.Cache.MissesPerMillion())
	fmt.Printf("branches        %d (%d taken, %d mispredicted)\n", r.Pipe.Branches, r.Pipe.Taken, r.Pipe.Mispredicts)
	fmt.Printf("cache energy    %.2f µJ (switching %.1f%%, internal %.1f%%, leakage %.1f%%)\n",
		r.Power.TotalPJ()/1e6, 100*sw, 100*in, 100*lk)
	fmt.Printf("average power   %.2f mW; peak %.2f mW\n", 1e3*r.Power.AvgPowerW(), 1e3*r.Power.PeakPowerW)
	fmt.Printf("output          %#x\n", r.Pipe.Output)
	if st := r.Sampled; st != nil {
		if st.Exact {
			fmt.Printf("sampling        exact (run too short for sampling; full detail)\n")
		} else {
			fmt.Printf("sampling        %d windows, %.2f%% of instructions detailed, 95%% CI ±%.2f%% cycles / ±%.2f%% energy\n",
				st.Windows, 100*float64(st.DetailedInstrs)/float64(st.TotalInstrs),
				100*st.CycleRelCI, 100*st.EnergyRelCI)
		}
	}
}

// exportRun writes the -metrics JSON and/or -phases CSV for one run.
func exportRun(s *sim.Setup, cfg sim.Config, cal power.Calibration, r *sim.Result,
	man *metrics.Manifest, out runOutputs) {
	man.Kernel, man.Scale, man.Config = s.Kernel.Name, s.Scale, cfg.Name
	man.ISAPoint = fmt.Sprintf("k=%d, %d/%d opcode points, %d dictionary entries",
		s.Synth.K, s.Synth.Spec.UsedPoints(), 1<<s.Synth.K, s.Synth.DictEntries)
	man.SetCalibration(cal)
	man.ConfigHash = metrics.HashConfig(s.Synth.Spec.MarshalConfig(), man.Calibration)

	reg := metrics.NewRegistry()
	publishRun(reg.Scope("run", s.Kernel.Name, cfg.Name), r)

	runs := []metrics.RunExport{{Kernel: s.Kernel.Name, Config: cfg.Name,
		Series: r.Phases, Stalls: sim.Stalls(r.Pipe)}}
	if out.Metrics != "" {
		man.Finish()
		exp := &metrics.Export{Manifest: man, Registry: reg.Snapshot(), Runs: runs}
		if err := exp.WriteJSONFile(out.Metrics); err != nil {
			fatal(err)
		}
		log.Info("wrote metrics export", "path", out.Metrics)
	}
	if out.Phases != "" {
		if err := metrics.WritePhasesCSVFile(out.Phases, runs); err != nil {
			fatal(err)
		}
		log.Info("wrote phase series", "path", out.Phases)
	}
}

// publishRun exports one run's architectural and power results as
// registry instruments on sc — shared by the -metrics export and the
// live telemetry registry.
func publishRun(sc metrics.Scope, r *sim.Result) {
	sc.Counter("cycles").Add(r.Pipe.Cycles)
	sc.Counter("instrs").Add(r.Pipe.Instrs)
	sc.Counter("fetches").Add(r.Cache.Accesses)
	sc.Counter("misses").Add(r.Cache.Misses)
	sc.Counter("branches").Add(r.Pipe.Branches)
	sc.Counter("mispredicts").Add(r.Pipe.Mispredicts)
	sc.Gauge("switching_pj").Set(r.Power.SwitchingPJ)
	sc.Gauge("internal_pj").Set(r.Power.InternalPJ)
	sc.Gauge("leakage_pj").Set(r.Power.LeakagePJ)
	sc.Gauge("total_pj").Set(r.Power.TotalPJ())
	sc.Gauge("avg_power_w").Set(r.Power.AvgPowerW())
	sc.Gauge("peak_power_w").Set(r.Power.PeakPowerW)
	sc.Gauge("ipc").Set(r.Pipe.IPC())
	sc.Gauge("miss_per_million").Set(r.Cache.MissesPerMillion())
}

// stallTable renders the stall-cause breakdown of every run that
// carries one: the zero-issue cycles of the CPI stack split by blocking
// cause, per kernel × configuration.
func stallTable(runs []metrics.RunExport) {
	any := false
	for _, run := range runs {
		if run.Stalls == nil {
			continue
		}
		if !any {
			fmt.Printf("\nstall-cause breakdown (zero-issue cycles)\n")
			fmt.Printf("%-16s %-8s %12s %12s %12s %12s %12s %12s\n",
				"kernel", "config", "icache-miss", "mispredict", "fetch", "hazard", "total", "dual-issue")
			any = true
		}
		b := run.Stalls
		fmt.Printf("%-16s %-8s %12d %12d %12d %12d %12d %12d\n",
			run.Kernel, run.Config, b.MissCycles, b.BubbleCycles,
			b.FetchCycles, b.HazardCycles, b.Total(), b.DualIssue)
	}
}

// report renders a -metrics JSON export: manifest, registry, phase
// tables and the top-N fetch-energy hotspots.
func report(path string, topN int) {
	exp, err := metrics.ReadExportFile(path)
	if err != nil {
		fatal(err)
	}
	if m := exp.Manifest; m != nil {
		fmt.Printf("manifest\n")
		fmt.Printf("  tool         %s %s\n", m.Tool, strings.Join(m.Args, " "))
		if m.Kernel != "" {
			fmt.Printf("  kernel       %s (scale %d), config %s\n", m.Kernel, m.Scale, m.Config)
		}
		if m.ISAPoint != "" {
			fmt.Printf("  isa point    %s\n", m.ISAPoint)
		}
		if m.ConfigHash != "" {
			fmt.Printf("  config hash  %s\n", m.ConfigHash)
		}
		if m.GitDescribe != "" {
			fmt.Printf("  source       %s, %s\n", m.GitDescribe, m.GoVersion)
		} else {
			fmt.Printf("  source       %s\n", m.GoVersion)
		}
		if m.Workers > 0 {
			fmt.Printf("  workers      %d\n", m.Workers)
		}
		fmt.Printf("  time         started %s, wall %.3fs, cpu %.3fs\n", m.StartedAt, m.WallSec, m.CPUSec)
	}
	if len(exp.Registry.Counters) > 0 || len(exp.Registry.Gauges) > 0 {
		fmt.Printf("\nregistry\n")
		for _, c := range exp.Registry.Counters {
			fmt.Printf("  %-44s %20d\n", c.Name, c.Value)
		}
		for _, g := range exp.Registry.Gauges {
			fmt.Printf("  %-44s %20.4f\n", g.Name, g.Value)
		}
		for _, h := range exp.Registry.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Printf("  %-44s %11d obs, mean %.4f\n", h.Name, h.Count, mean)
		}
	}
	stallTable(exp.Runs)
	for _, run := range exp.Runs {
		if run.Series == nil || len(run.Series.Samples) == 0 {
			continue
		}
		fmt.Printf("\nphases: %s on %s (%d-cycle windows)\n", run.Kernel, run.Config, run.Series.WindowCycles)
		fmt.Printf("%12s %8s %8s %8s %10s %12s %12s %12s %7s\n",
			"end_cycle", "cycles", "fetches", "misses", "miss/K", "switch_pJ", "internal_pJ", "leak_pJ", "IPC")
		for _, w := range run.Series.Samples {
			fmt.Printf("%12d %8d %8d %8d %10.2f %12.1f %12.1f %12.1f %7.3f\n",
				w.EndCycle, w.Cycles, w.Fetches, w.Misses, 1e3*w.MissRate(),
				w.SwitchPJ, w.InternalPJ, w.LeakPJ, w.IPC())
		}
		if len(run.Series.Hotspots) > 0 {
			total := run.Series.TotalFetchPJ()
			fmt.Printf("\nfetch-energy hotspots: %s on %s (top %d of %d PC buckets)\n",
				run.Kernel, run.Config, len(run.Series.TopHotspots(topN)), len(run.Series.Hotspots))
			fmt.Printf("%4s %-21s %10s %8s %14s %7s\n", "#", "pc range", "fetches", "misses", "fetch_pJ", "share")
			for i, h := range run.Series.TopHotspots(topN) {
				rng := fmt.Sprintf("%08x-%08x", h.StartAddr, h.EndAddr)
				if h.StartAddr == 0 && h.EndAddr == 0 {
					rng = "(outside text)"
				}
				share := 0.0
				if total > 0 {
					share = 100 * h.FetchPJ / total
				}
				fmt.Printf("%4d %-21s %10d %8d %14.1f %6.1f%%\n",
					i+1, rng, h.Fetches, h.Misses, h.FetchPJ, share)
			}
		}
	}
}
