package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"powerfits/internal/cache"
	"powerfits/internal/cpu"
	"powerfits/internal/kernels"
	"powerfits/internal/power"
	"powerfits/internal/program"
	"powerfits/internal/sim"
	"powerfits/internal/synth"
)

// PipeBenchSchema tags BENCH_pipeline.json records. v2 adds the
// functional-machine rows (interpreted vs compiled, instrs_per_sec)
// and the Prepare row next to the v1 pipeline rows.
const PipeBenchSchema = "powerfits-pipebench/v2"

// pipeBenchEntry is one benchmark row: a steady-state loop for one
// configuration, measured exactly like the bench_test.go counterpart
// (construction outside the timer, shared predecode/compiled table,
// reused result). Pipeline rows carry cycles_per_*; functional-machine
// rows carry instrs_per_sec; the Prepare row carries only ns_per_op.
type pipeBenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerOp  float64 `json:"cycles_per_op,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	Iterations   int     `json:"iterations"`
}

// pipeBenchReport is the perf-trajectory record successive PRs diff to
// catch timing-loop regressions (see DESIGN.md §9).
type pipeBenchReport struct {
	Schema  string           `json:"schema"`
	Kernel  string           `json:"kernel"`
	Scale   int              `json:"scale"`
	GOOS    string           `json:"goos"`
	GOARCH  string           `json:"goarch"`
	CPUs    int              `json:"cpus"`
	Entries []pipeBenchEntry `json:"entries"`
}

// pipeBenchLoop is the measured body: one full pipeline run per op over
// the shared predecode table, with cache/meter/machine construction
// excluded from the timer so ns/op isolates the cycle loop. It reports
// cycles/s and cycles/op via b.ReportMetric, which testing.Benchmark
// surfaces in Result.Extra.
func pipeBenchLoop(b *testing.B, s *sim.Setup, cfg sim.Config) {
	cal := power.DefaultCalibration()
	pc := cpu.DefaultPipeConfig()
	prog, im, dec := s.Prog, s.ArmImage, s.ArmDecoded
	if cfg.ISA == sim.ISAFITS {
		prog, im, dec = s.Fits.Lowered, s.Fits.Image, s.FitsDecoded
	}
	var res cpu.PipeResult
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cache.MustNew(cfg.Cache)
		meter := power.MustNewMeter(cfg.Cache, cal)
		port := sim.NewFetchPort(c, meter, im, pc.BlockBytes)
		m := cpu.New(prog, cpu.ImageLayout(im))
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := cpu.RunPipelineInto(m, pc, port, dec, &res); err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// machineBenchLoop is the functional-machine counterpart of
// pipeBenchLoop: one full program run per op (interpreted Step loop or
// compiled micro-op table), machine construction excluded from the
// timer, instrs/s reported via b.ReportMetric.
func machineBenchLoop(b *testing.B, p *program.Program, l cpu.Layout, run func(*cpu.Machine) error) {
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := cpu.New(p, l)
		m.MaxInstrs = 2e9
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := run(m); err != nil {
			b.Fatal(err)
		}
		instrs += m.InstrCount
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// record converts one testing.Benchmark result into a report entry and
// echoes it to stderr.
func (rep *pipeBenchReport) record(name string, r testing.BenchmarkResult) {
	e := pipeBenchEntry{
		Name:         name,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		CyclesPerOp:  r.Extra["cycles/op"],
		CyclesPerSec: r.Extra["cycles/s"],
		InstrsPerSec: r.Extra["instrs/s"],
		Iterations:   r.N,
	}
	rep.Entries = append(rep.Entries, e)
	rate, unit := e.CyclesPerSec, "cycles/s"
	if e.InstrsPerSec > 0 {
		rate, unit = e.InstrsPerSec, "instrs/s"
	}
	fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %14.0f %-8s %4d allocs/op\n",
		e.Name, e.NsPerOp, rate, unit, e.AllocsPerOp)
}

// runPipeBench benchmarks the timing loop for the paper's two headline
// configurations, the functional machine on both execution paths, and
// the per-kernel Prepare cost, then writes the JSON trajectory record
// to path.
func runPipeBench(path, kernel string, scale int) error {
	if scale <= 0 {
		scale = 1
	}
	k := kernels.MustGet(kernel)
	s, err := sim.Prepare(k, scale, synth.DefaultOptions())
	if err != nil {
		return err
	}
	rep := pipeBenchReport{
		Schema: PipeBenchSchema,
		Kernel: kernel,
		Scale:  scale,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	for _, cfg := range []sim.Config{sim.ARM16, sim.FITS8} {
		cfg := cfg
		rep.record("PipelineSteadyState/"+cfg.Name,
			testing.Benchmark(func(b *testing.B) { pipeBenchLoop(b, s, cfg) }))
	}

	l := cpu.WordLayout(s.Prog.TextBase, len(s.Prog.Instrs))
	comp := cpu.Compile(s.Prog, l)
	rep.record("MachineSteadyState/Interpreted",
		testing.Benchmark(func(b *testing.B) {
			machineBenchLoop(b, s.Prog, l, (*cpu.Machine).Run)
		}))
	rep.record("MachineSteadyState/Compiled",
		testing.Benchmark(func(b *testing.B) {
			machineBenchLoop(b, s.Prog, l, func(m *cpu.Machine) error { return m.RunCompiled(comp) })
		}))
	rep.record("Prepare",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Prepare(k, scale, synth.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}))
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
