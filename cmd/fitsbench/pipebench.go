package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"powerfits/internal/cache"
	"powerfits/internal/cpu"
	"powerfits/internal/kernels"
	"powerfits/internal/power"
	"powerfits/internal/sim"
	"powerfits/internal/synth"
)

// PipeBenchSchema tags BENCH_pipeline.json records.
const PipeBenchSchema = "powerfits-pipebench/v1"

// pipeBenchEntry is one benchmark row: the steady-state timing loop for
// one configuration, measured exactly like BenchmarkPipelineSteadyState
// (construction outside the timer, shared predecode table, reused
// result).
type pipeBenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerOp  float64 `json:"cycles_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Iterations   int     `json:"iterations"`
}

// pipeBenchReport is the perf-trajectory record successive PRs diff to
// catch timing-loop regressions (see DESIGN.md §9).
type pipeBenchReport struct {
	Schema  string           `json:"schema"`
	Kernel  string           `json:"kernel"`
	Scale   int              `json:"scale"`
	GOOS    string           `json:"goos"`
	GOARCH  string           `json:"goarch"`
	CPUs    int              `json:"cpus"`
	Entries []pipeBenchEntry `json:"entries"`
}

// pipeBenchLoop is the measured body: one full pipeline run per op over
// the shared predecode table, with cache/meter/machine construction
// excluded from the timer so ns/op isolates the cycle loop. It reports
// cycles/s and cycles/op via b.ReportMetric, which testing.Benchmark
// surfaces in Result.Extra.
func pipeBenchLoop(b *testing.B, s *sim.Setup, cfg sim.Config) {
	cal := power.DefaultCalibration()
	pc := cpu.DefaultPipeConfig()
	prog, im, dec := s.Prog, s.ArmImage, s.ArmDecoded
	if cfg.ISA == sim.ISAFITS {
		prog, im, dec = s.Fits.Lowered, s.Fits.Image, s.FitsDecoded
	}
	var res cpu.PipeResult
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cache.MustNew(cfg.Cache)
		meter := power.MustNewMeter(cfg.Cache, cal)
		port := sim.NewFetchPort(c, meter, im, pc.BlockBytes)
		m := cpu.New(prog, cpu.ImageLayout(im))
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := cpu.RunPipelineInto(m, pc, port, dec, &res); err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// runPipeBench benchmarks the timing loop for the paper's two headline
// configurations and writes the JSON trajectory record to path.
func runPipeBench(path, kernel string, scale int) error {
	if scale <= 0 {
		scale = 1
	}
	s, err := sim.Prepare(kernels.MustGet(kernel), scale, synth.DefaultOptions())
	if err != nil {
		return err
	}
	rep := pipeBenchReport{
		Schema: PipeBenchSchema,
		Kernel: kernel,
		Scale:  scale,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	for _, cfg := range []sim.Config{sim.ARM16, sim.FITS8} {
		cfg := cfg
		r := testing.Benchmark(func(b *testing.B) { pipeBenchLoop(b, s, cfg) })
		rep.Entries = append(rep.Entries, pipeBenchEntry{
			Name:         "PipelineSteadyState/" + cfg.Name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			CyclesPerOp:  r.Extra["cycles/op"],
			CyclesPerSec: r.Extra["cycles/s"],
			Iterations:   r.N,
		})
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %14.0f cycles/s %4d allocs/op\n",
			rep.Entries[len(rep.Entries)-1].Name,
			rep.Entries[len(rep.Entries)-1].NsPerOp,
			rep.Entries[len(rep.Entries)-1].CyclesPerSec,
			r.AllocsPerOp())
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
