package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/archive"
	"powerfits/internal/cache"
	"powerfits/internal/cpu"
	"powerfits/internal/kernels"
	"powerfits/internal/power"
	"powerfits/internal/program"
	"powerfits/internal/serve"
	"powerfits/internal/sim"
	"powerfits/internal/sweep"
	"powerfits/internal/synth"
)

// PipeBenchSchema tags BENCH_pipeline.json records. v2 added the
// functional-machine rows (interpreted vs compiled, instrs_per_sec)
// and the Prepare row next to the v1 pipeline rows; v3 added the
// superblock machine row and the sampled-pipeline rows, each carrying
// its measured cycle error against the exact run; v4 added the
// design-space sweep rows (cold vs warm store, points_per_sec and the
// profile memo hit rate); v5 adds the serving-plane rows (Serve/Hit
// replaying the result cache, Serve/Cold running the full flow per
// request, both with req_per_sec).
const PipeBenchSchema = "powerfits-pipebench/v5"

// pipeBenchSchemaPrefix matches any record revision — the delta table
// tolerates comparing across schema versions (new rows show as added).
const pipeBenchSchemaPrefix = "powerfits-pipebench/"

// pipeBenchEntry is one benchmark row: a steady-state loop for one
// configuration, measured exactly like the bench_test.go counterpart
// (construction outside the timer, shared predecode/compiled table,
// reused result). Pipeline rows carry cycles_per_*; functional-machine
// rows carry instrs_per_sec; the Prepare row carries only ns_per_op.
type pipeBenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CyclesPerOp  float64 `json:"cycles_per_op,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	// CycleErrPct is the sampled estimator's relative cycle error
	// against the exact pipeline run, in percent (sampled rows only).
	CycleErrPct float64 `json:"cycle_err_pct,omitempty"`
	// PointsPerSec and MemoHitRate describe the design-space sweep
	// rows: grid points resolved per second and the profile cache's
	// hit fraction over the measured run.
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	MemoHitRate  float64 `json:"memo_hit_rate,omitempty"`
	// ReqPerSec describes the serving-plane rows: /synth requests
	// answered per second through the in-process handler.
	ReqPerSec  float64 `json:"req_per_sec,omitempty"`
	Iterations int     `json:"iterations"`
}

// pipeBenchReport is the perf-trajectory record successive PRs diff to
// catch timing-loop regressions (see DESIGN.md §9).
type pipeBenchReport struct {
	Schema  string           `json:"schema"`
	Kernel  string           `json:"kernel"`
	Scale   int              `json:"scale"`
	GOOS    string           `json:"goos"`
	GOARCH  string           `json:"goarch"`
	CPUs    int              `json:"cpus"`
	Entries []pipeBenchEntry `json:"entries"`
}

// pipeBenchLoop is the measured body: one full pipeline run per op over
// the shared predecode table, with cache/meter/machine construction
// excluded from the timer so ns/op isolates the cycle loop. It reports
// cycles/s and cycles/op via b.ReportMetric, which testing.Benchmark
// surfaces in Result.Extra.
func pipeBenchLoop(b *testing.B, s *sim.Setup, cfg sim.Config) {
	cal := power.DefaultCalibration()
	pc := cpu.DefaultPipeConfig()
	prog, im, dec := s.Prog, s.ArmImage, s.ArmDecoded
	if cfg.ISA == sim.ISAFITS {
		prog, im, dec = s.Fits.Lowered, s.Fits.Image, s.FitsDecoded
	}
	var res cpu.PipeResult
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cache.MustNew(cfg.Cache)
		meter := power.MustNewMeter(cfg.Cache, cal)
		port := sim.NewFetchPort(c, meter, im, pc.BlockBytes)
		m := cpu.New(prog, cpu.ImageLayout(im))
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := cpu.RunPipelineInto(m, pc, port, dec, &res); err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// machineBenchLoop is the functional-machine counterpart of
// pipeBenchLoop: one full program run per op (interpreted Step loop or
// compiled micro-op table), machine construction excluded from the
// timer, instrs/s reported via b.ReportMetric.
func machineBenchLoop(b *testing.B, p *program.Program, l cpu.Layout, run func(*cpu.Machine) error) {
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := cpu.New(p, l)
		m.MaxInstrs = 2e9
		m.Output = make([]uint32, 0, 64)
		b.StartTimer()
		if err := run(m); err != nil {
			b.Fatal(err)
		}
		instrs += m.InstrCount
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// record converts one testing.Benchmark result into a report entry,
// echoes it to stderr, and returns the entry for post-hoc annotation.
func (rep *pipeBenchReport) record(name string, r testing.BenchmarkResult) *pipeBenchEntry {
	e := pipeBenchEntry{
		Name:         name,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		CyclesPerOp:  r.Extra["cycles/op"],
		CyclesPerSec: r.Extra["cycles/s"],
		InstrsPerSec: r.Extra["instrs/s"],
		PointsPerSec: r.Extra["points/s"],
		MemoHitRate:  r.Extra["memo-hit-rate"],
		ReqPerSec:    r.Extra["req/s"],
		Iterations:   r.N,
	}
	rep.Entries = append(rep.Entries, e)
	rate, unit := e.CyclesPerSec, "cycles/s"
	if e.InstrsPerSec > 0 {
		rate, unit = e.InstrsPerSec, "instrs/s"
	}
	if e.PointsPerSec > 0 {
		rate, unit = e.PointsPerSec, "points/s"
	}
	if e.ReqPerSec > 0 {
		rate, unit = e.ReqPerSec, "req/s"
	}
	cli.Raw("%-32s %12.0f ns/op %14.0f %-8s %4d allocs/op\n",
		e.Name, e.NsPerOp, rate, unit, e.AllocsPerOp)
	return &rep.Entries[len(rep.Entries)-1]
}

// runPipeBench benchmarks the timing loop for the paper's two headline
// configurations (full pipeline and sampled estimator, the latter with
// its measured cycle error), the functional machine on all three
// execution paths (interpreted, compiled, superblock-fused), and the
// per-kernel Prepare cost, then writes the JSON trajectory record to
// path — printing a per-entry delta table first when path already
// holds a previous record.
func runPipeBench(path, kernel string, scale int) error {
	if scale <= 0 {
		scale = 1
	}
	k := kernels.MustGet(kernel)
	s, err := sim.Prepare(k, scale, synth.DefaultOptions())
	if err != nil {
		return err
	}
	rep := pipeBenchReport{
		Schema: PipeBenchSchema,
		Kernel: kernel,
		Scale:  scale,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	cal := power.DefaultCalibration()
	for _, cfg := range []sim.Config{sim.ARM16, sim.FITS8} {
		cfg := cfg
		rep.record("PipelineSteadyState/"+cfg.Name,
			testing.Benchmark(func(b *testing.B) { pipeBenchLoop(b, s, cfg) }))
	}
	for _, cfg := range []sim.Config{sim.ARM16, sim.FITS8} {
		cfg := cfg
		exact, err := s.Run(cfg, cal)
		if err != nil {
			return err
		}
		var sampled *sim.Result
		e := rep.record("SampledPipeline/"+cfg.Name,
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					r, err := s.RunSampled(cfg, cal, sim.SampleOptions{})
					if err != nil {
						b.Fatal(err)
					}
					sampled = r
				}
			}))
		if sampled != nil {
			e.CycleErrPct = 100 * math.Abs(float64(sampled.Pipe.Cycles)-float64(exact.Pipe.Cycles)) /
				float64(exact.Pipe.Cycles)
			cli.Raw("%-32s %12s cycle error %.3f%%\n", "", "", e.CycleErrPct)
		}
	}

	l := cpu.WordLayout(s.Prog.TextBase, len(s.Prog.Instrs))
	comp := cpu.Compile(s.Prog, l)
	rep.record("MachineSteadyState/Interpreted",
		testing.Benchmark(func(b *testing.B) {
			machineBenchLoop(b, s.Prog, l, (*cpu.Machine).Run)
		}))
	rep.record("MachineSteadyState/Compiled",
		testing.Benchmark(func(b *testing.B) {
			machineBenchLoop(b, s.Prog, l, func(m *cpu.Machine) error { return m.RunCompiled(comp) })
		}))
	rep.record("MachineSteadyState/Superblock",
		testing.Benchmark(func(b *testing.B) {
			machineBenchLoop(b, s.Prog, l, func(m *cpu.Machine) error { return m.RunSuperblocks(comp) })
		}))
	rep.record("Prepare",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Prepare(k, scale, synth.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}))

	if err := pipeBenchSweep(&rep, kernel, scale); err != nil {
		return err
	}
	if err := pipeBenchServe(&rep, kernel, scale); err != nil {
		return err
	}

	if prev, err := readPipeBench(path); err == nil {
		comparePipeBench(prev, &rep)
	} else if !os.IsNotExist(err) {
		log.Warn("cannot diff against previous pipebench record", "path", path, "err", err)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote pipebench record", "path", path)
	return nil
}

// pipeBenchSweep measures the design-space exploration engine over a
// small real grid: cold (every point pays profile + synthesis + sampled
// simulation) and warm (the same grid against the store the cold pass
// filled — the all-skips path). The cold row's memo_hit_rate records
// how much of the preparation work the profile cache absorbed.
func pipeBenchSweep(rep *pipeBenchReport, kernel string, scale int) error {
	grid := sweep.DefaultGrid(kernel, scale)
	grid.Ks = []int{5, 6}
	grid.DictCaps = []int{16, 64}
	grid.Caches = grid.Caches[:2]

	root, err := os.MkdirTemp("", "pipebench-sweep-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	sweepLoop := func(b *testing.B, store func(i int) *archive.Store, wantEval bool) {
		b.ReportAllocs()
		points := 0
		var hits, runs uint64
		for i := 0; i < b.N; i++ {
			res, err := sweep.Run(sweep.Options{Grid: grid, Store: store(i), NoRefine: true})
			if err != nil {
				b.Fatal(err)
			}
			if wantEval != (res.Stats.Evaluated > 0) {
				b.Fatalf("sweep evaluated %d points, want evaluated=%t", res.Stats.Evaluated, wantEval)
			}
			points += res.Stats.Points
			hits += res.Stats.MemoHits
			runs += res.Stats.ProfileRuns
		}
		b.StopTimer()
		b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
		if hits+runs > 0 {
			b.ReportMetric(float64(hits)/float64(hits+runs), "memo-hit-rate")
		}
	}

	coldN := 0 // testing.Benchmark re-runs the body with growing b.N;
	// every op needs a store no previous op has filled.
	cold := rep.record("Sweep/Cold", testing.Benchmark(func(b *testing.B) {
		sweepLoop(b, func(int) *archive.Store {
			coldN++
			return archive.NewStore(filepath.Join(root, "cold", strconv.Itoa(coldN)))
		}, true)
	}))

	warmStore := archive.NewStore(filepath.Join(root, "warm"))
	if _, err := sweep.Run(sweep.Options{Grid: grid, Store: warmStore, NoRefine: true}); err != nil {
		return err
	}
	warm := rep.record("Sweep/Warm", testing.Benchmark(func(b *testing.B) {
		sweepLoop(b, func(int) *archive.Store { return warmStore }, false)
	}))

	cli.Raw("%-32s %12s warm/cold speedup %.1fx, cold memo hit rate %.2f\n",
		"", "", cold.NsPerOp/warm.NsPerOp, cold.MemoHitRate)
	return nil
}

// pipeBenchServe measures the serving plane through the in-process
// handler (no sockets): Serve/Hit replays one cached request — the
// O(1) lookup path most multi-tenant traffic takes — and Serve/Cold
// gives every iteration a fresh synthesis identity so it pays the full
// profile→synthesize→simulate flow. Both rows carry req_per_sec; their
// ns/op ratio is the result cache's speedup (the ≥50× BenchmarkServe
// gate, recorded here as a trajectory).
func pipeBenchServe(rep *pipeBenchReport, kernel string, scale int) error {
	do := func(b *testing.B, h http.Handler, blob []byte) {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/synth", bytes.NewReader(blob))
		r.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("serve answered %d: %s", w.Code, w.Body)
		}
	}

	hitSvc := serve.New(serve.Options{Workers: 2})
	hitH := hitSvc.Handler()
	hot, err := json.Marshal(serve.Request{Kernel: kernel, Scale: scale, Configs: []string{"FITS8"}})
	if err != nil {
		return err
	}
	hit := rep.record("Serve/Hit", testing.Benchmark(func(b *testing.B) {
		do(b, hitH, hot) // warm the cache outside the timer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, hitH, hot)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}))

	coldSvc := serve.New(serve.Options{Workers: 2})
	coldH := coldSvc.Handler()
	coldN := 0 // a unique dictionary budget per op keeps every request cold
	cold := rep.record("Serve/Cold", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			coldN++
			blob, merr := json.Marshal(serve.Request{Kernel: kernel, Scale: scale,
				Configs: []string{"FITS8"}, Synth: serve.SynthKnobs{DictCap: 256 + coldN}})
			if merr != nil {
				b.Fatal(merr)
			}
			do(b, coldH, blob)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}))
	cli.Raw("%-32s %12s hit/cold speedup %.0fx\n", "", "", cold.NsPerOp/hit.NsPerOp)
	return nil
}

// readPipeBench loads a previous trajectory record; any pipebench
// schema revision is accepted so the delta table works across schema
// bumps (rows that exist on only one side are marked, not compared).
func readPipeBench(path string) (*pipeBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep pipeBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(rep.Schema, pipeBenchSchemaPrefix) {
		return nil, fmt.Errorf("schema %q is not a pipebench record", rep.Schema)
	}
	return &rep, nil
}

// comparePipeBench prints the per-entry delta table between the record
// previously stored at the output path and the fresh measurement —
// the at-a-glance regression check a PR runs before committing a new
// trajectory record. Rows are matched by name; ns/op is the headline
// delta (negative = faster), with the throughput metric alongside when
// both sides carry one.
func comparePipeBench(old, cur *pipeBenchReport) {
	rate := func(e pipeBenchEntry) (float64, string) {
		if e.InstrsPerSec > 0 {
			return e.InstrsPerSec, "instrs/s"
		}
		if e.CyclesPerSec > 0 {
			return e.CyclesPerSec, "cycles/s"
		}
		return 0, ""
	}
	prev := make(map[string]pipeBenchEntry, len(old.Entries))
	for _, e := range old.Entries {
		prev[e.Name] = e
	}
	fmt.Printf("pipebench delta vs previous record (%s, kernel %s):\n", old.Schema, old.Kernel)
	fmt.Printf("  %-32s %14s %14s %9s %14s %14s %9s %8s\n",
		"name", "old ns/op", "new ns/op", "Δns/op", "old rate", "new rate", "Δrate", "Δallocs")
	for _, e := range cur.Entries {
		nr, unit := rate(e)
		o, ok := prev[e.Name]
		if !ok {
			fmt.Printf("  %-32s %14s %14.0f %9s %14s %14.0f %9s %8s  %s\n",
				e.Name, "(new)", e.NsPerOp, "—", "—", nr, "—", "—", unit)
			continue
		}
		delete(prev, e.Name)
		or, _ := rate(o)
		pct := func(oldV, newV float64) string {
			if oldV <= 0 {
				return "—"
			}
			return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
		}
		fmt.Printf("  %-32s %14.0f %14.0f %9s %14.0f %14.0f %9s %+8d  %s\n",
			e.Name, o.NsPerOp, e.NsPerOp, pct(o.NsPerOp, e.NsPerOp),
			or, nr, pct(or, nr), e.AllocsPerOp-o.AllocsPerOp, unit)
	}
	// Entries the new record dropped, in the old record's order.
	for _, e := range old.Entries {
		if _, gone := prev[e.Name]; gone {
			fmt.Printf("  %-32s %14.0f %14s\n", e.Name, e.NsPerOp, "(gone)")
		}
	}
}
