// Command fitsbench regenerates the paper's evaluation: it prepares and
// simulates the 21-kernel suite under the four processor configurations
// (ARM16, ARM8, FITS16, FITS8) and prints the table behind every figure
// (Figures 3–14), the abstract's headline averages, and the synthesis
// ablations.
//
// Usage:
//
//	fitsbench                 # every figure at default scale, all cores
//	fitsbench -j 1            # sequential engine (identical tables)
//	fitsbench -exp fig11      # one figure
//	fitsbench -exp ablations  # the four synthesis ablations
//	fitsbench -scale 1 -q     # quick run, no progress lines
//	fitsbench -json BENCH_suite.json   # also emit timing/headline JSON
//	fitsbench -archive .powerfits/runs # archive the full run record (see `powerfits diff`)
//	fitsbench -metrics suite.json -phases suite.csv [-window N]
//	fitsbench -cpuprofile cpu.pprof -memprofile mem.pprof -trace run.trace
//	fitsbench -pipebench BENCH_pipeline.json   # timing-loop perf trajectory record (diffs vs an existing record)
//	fitsbench -superblocks -sample    # fast path: fused-superblock profiling + sampled timing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powerfits/internal/archive"
	"powerfits/internal/experiments"
	"powerfits/internal/metrics"
	"powerfits/internal/sim"
)

// stopProfiles flushes any active -cpuprofile/-memprofile/-trace
// output; fatal routes through it so profiles survive error exits.
var stopProfiles = func() error { return nil }

func fatal(err error) {
	_ = stopProfiles()
	fmt.Fprintln(os.Stderr, "fitsbench:", err)
	os.Exit(1)
}

// finish flushes the profiling hooks on the success path.
func finish() {
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "fitsbench:", err)
		os.Exit(1)
	}
}

// exportSuite writes the -metrics JSON (manifest + merged registry +
// every kernel×config phase series) and/or the -phases CSV. Runs are
// ordered by kernel name then sim.Configs order, so the export is
// deterministic at any parallelism.
func exportSuite(man *metrics.Manifest, scale int, suite *experiments.Suite,
	metricsPath, phasesPath string) {
	man.Scale = scale
	man.Workers = suite.Workers
	man.SetCalibration(suite.Cal)
	blobs := [][]byte{man.Calibration}
	for _, s := range suite.Setups {
		blobs = append(blobs, s.Synth.Spec.MarshalConfig())
	}
	man.ConfigHash = metrics.HashConfig(blobs...)

	var runs []metrics.RunExport
	for _, s := range suite.Setups {
		for _, cfg := range sim.Configs {
			r := suite.Results[s.Kernel.Name][cfg.Name]
			runs = append(runs, metrics.RunExport{
				Kernel: s.Kernel.Name, Config: cfg.Name, Series: r.Phases,
				Stalls: sim.Stalls(r.Pipe)})
		}
	}
	if metricsPath != "" {
		man.Finish()
		exp := &metrics.Export{Manifest: man, Registry: suite.Metrics.Snapshot(), Runs: runs}
		if err := exp.WriteJSONFile(metricsPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsPath)
	}
	if phasesPath != "" {
		if err := metrics.WritePhasesCSVFile(phasesPath, runs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", phasesPath)
	}
}

// archiveSuite writes the complete run record. A path ending in .json
// lands exactly there (the CI baseline workflow); anything else is
// treated as a run-store directory and the record is filed under its
// deterministic run ID.
func archiveSuite(man *metrics.Manifest, scale int, suite *experiments.Suite, dest string) {
	rec := archive.FromSuite(man, suite, scale)
	man.Finish()
	path := dest
	var err error
	if strings.HasSuffix(dest, ".json") {
		err = rec.WriteFile(dest)
	} else {
		path, err = archive.NewStore(dest).Save(rec)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "archived run %s to %s\n", rec.RunID, path)
}

func main() {
	var (
		scale       = flag.Int("scale", 0, "workload scale (0 = per-kernel default)")
		exp         = flag.String("exp", "all", "experiment id: all, figs, fig3..fig14, headline, ablations, ablate-opwidth, ablate-dict, ablate-regs, ablate-mode")
		quiet       = flag.Bool("q", false, "suppress progress output")
		jobs        = flag.Int("j", 0, "parallel workers (0 = all cores, 1 = sequential)")
		jsonPath    = flag.String("json", "", "write suite timing and headline averages as JSON to this path")
		archiveTo   = flag.String("archive", "", "archive the complete run record: a .json path, or a run-store directory")
		metricsPath = flag.String("metrics", "", "write manifest + suite registry + phase series as JSON")
		phasesPath  = flag.String("phases", "", "write every run's phase series as CSV")
		window      = flag.Int("window", 4096, "phase-sample window in cycles (with -metrics/-phases)")
		cpuProf     = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProf     = flag.String("memprofile", "", "write a pprof heap profile to this path")
		traceOut    = flag.String("trace", "", "write a runtime/trace execution trace to this path")
		pipeBench   = flag.String("pipebench", "", "benchmark the predecoded timing loop and write BENCH_pipeline.json-style output to this path, then exit; if the path already holds a record, a per-entry delta table is printed first")
		pipeKernel  = flag.String("pipebench-kernel", "crc32", "kernel the -pipebench loop runs")
		superblocks = flag.Bool("superblocks", false, "profile kernels through the fused superblock executor (identical profiles, faster preparation)")
		sample      = flag.Bool("sample", false, "replace full pipeline runs with the sampled timing estimator (exact outputs, ≤2% validated cycle/energy error)")
	)
	flag.Parse()

	if *sample && (*metricsPath != "" || *phasesPath != "") {
		fatal(fmt.Errorf("-sample is incompatible with -metrics/-phases: phase series require a full detailed run"))
	}

	if *pipeBench != "" {
		if err := runPipeBench(*pipeBench, *pipeKernel, *scale); err != nil {
			fatal(err)
		}
		return
	}

	stop, err := metrics.StartProfiles(metrics.ProfileConfig{
		CPUProfile: *cpuProf, MemProfile: *memProf, Trace: *traceOut})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fitsbench:", err)
		os.Exit(1)
	}
	stopProfiles = stop
	defer finish()

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}

	want := strings.ToLower(*exp)
	var tables []*experiments.Table

	needSuite := true
	switch want {
	case "ablations", "ablate-opwidth", "ablate-dict", "ablate-regs", "ablate-mode",
		"extensions", "ext-activity", "ext-geometry", "ext-energy", "ext-traffic", "ext-cpi":
		needSuite = false
	}

	if needSuite {
		man := metrics.NewManifest("fitsbench")
		var observe sim.ObserveOptions
		if *metricsPath != "" || *phasesPath != "" {
			observe.WindowCycles = *window
		}
		suite, err := experiments.RunSuite(experiments.Options{
			Scale: *scale, Workers: *jobs, Progress: progress, Observe: observe,
			Superblocks: *superblocks, Sampled: *sample})
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "suite generated in %.2fs with %d workers\n",
				suite.WallSec, suite.Workers)
		}
		for _, t := range suite.AllFigures() {
			if want == "all" || want == "figs" || want == t.ID || strings.HasPrefix(t.ID, want) {
				tables = append(tables, t)
			}
		}
		if *jsonPath != "" {
			man.Scale, man.Workers = *scale, suite.Workers
			man.SetCalibration(suite.Cal)
			man.Finish()
			rep := experiments.NewBenchReport(man, *scale, suite)
			if err := rep.WriteFile(*jsonPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *archiveTo != "" {
			archiveSuite(man, *scale, suite, *archiveTo)
		}
		if *metricsPath != "" || *phasesPath != "" {
			exportSuite(man, *scale, suite, *metricsPath, *phasesPath)
		}
	} else if *jsonPath != "" || *metricsPath != "" || *phasesPath != "" || *archiveTo != "" {
		fatal(fmt.Errorf("-json/-metrics/-phases/-archive require a suite experiment (not ablations/extensions)"))
	}

	ext := func(f func(int) (*experiments.Table, error)) *experiments.Table {
		t, err := f(1)
		if err != nil {
			fatal(err)
		}
		return t
	}
	switch want {
	case "all", "ablations":
		tables = append(tables, experiments.AblateOpcodeWidth()...)
		tables = append(tables, experiments.AblateDict()...)
		tables = append(tables, experiments.AblateWindow()...)
		tables = append(tables, experiments.AblateModes()...)
		if want == "all" {
			tables = append(tables, ext(experiments.ExtSwitchingModel),
				ext(experiments.ExtGeometry), ext(experiments.ExtEnergy),
				ext(experiments.ExtTraffic), ext(experiments.ExtCPI))
		}
	case "ablate-opwidth":
		tables = experiments.AblateOpcodeWidth()
	case "ablate-dict":
		tables = experiments.AblateDict()
	case "ablate-regs":
		tables = experiments.AblateWindow()
	case "ablate-mode":
		tables = experiments.AblateModes()
	case "extensions":
		tables = []*experiments.Table{ext(experiments.ExtSwitchingModel),
			ext(experiments.ExtGeometry), ext(experiments.ExtEnergy),
			ext(experiments.ExtTraffic), ext(experiments.ExtCPI)}
	case "ext-activity":
		tables = []*experiments.Table{ext(experiments.ExtSwitchingModel)}
	case "ext-geometry":
		tables = []*experiments.Table{ext(experiments.ExtGeometry)}
	case "ext-energy":
		tables = []*experiments.Table{ext(experiments.ExtEnergy)}
	case "ext-traffic":
		tables = []*experiments.Table{ext(experiments.ExtTraffic)}
	case "ext-cpi":
		tables = []*experiments.Table{ext(experiments.ExtCPI)}
	}

	if len(tables) == 0 {
		fatal(fmt.Errorf("no experiment matches %q", *exp))
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
}
