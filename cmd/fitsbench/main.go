// Command fitsbench regenerates the paper's evaluation: it prepares and
// simulates the 21-kernel suite under the four processor configurations
// (ARM16, ARM8, FITS16, FITS8) and prints the table behind every figure
// (Figures 3–14), the abstract's headline averages, and the synthesis
// ablations.
//
// Usage:
//
//	fitsbench                 # every figure at default scale, all cores
//	fitsbench -j 1            # sequential engine (identical tables)
//	fitsbench -exp fig11      # one figure
//	fitsbench -exp ablations  # the four synthesis ablations
//	fitsbench -scale 1 -q     # quick run, no progress lines
//	fitsbench -json BENCH_suite.json   # also emit timing/headline JSON
//	fitsbench -archive .powerfits/runs # archive the full run record (see `powerfits diff`)
//	fitsbench -metrics suite.json -phases suite.csv [-window N]
//	fitsbench -cpuprofile cpu.pprof -memprofile mem.pprof -trace run.trace
//	fitsbench -pipebench BENCH_pipeline.json   # timing-loop perf trajectory record (diffs vs an existing record)
//	fitsbench -superblocks -sample    # fast path: fused-superblock profiling + sampled timing
//	fitsbench -telemetry :6060        # live /metrics, /healthz, /progress, /debug/pprof while the run is up
//	fitsbench -log-level debug -log-json   # structured engine/preparation logs
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/archive"
	"powerfits/internal/experiments"
	"powerfits/internal/kernels"
	"powerfits/internal/metrics"
	"powerfits/internal/sim"
)

// log is the run logger; set in main before any fallible work.
var log *slog.Logger

// tele is the embedded telemetry server (nil without -telemetry).
var tele *cli.Telemetry

// stopProfiles flushes any active -cpuprofile/-memprofile/-trace
// output; fatal routes through it so profiles survive error exits.
var stopProfiles = func() error { return nil }

func fatal(err error) {
	_ = stopProfiles()
	tele.Finish(err)
	tele.CloseNow()
	log.Error("fitsbench failed", "err", err)
	os.Exit(1)
}

// finish flushes the profiling hooks on the success path.
func finish() {
	if err := stopProfiles(); err != nil {
		log.Error("flushing profiles failed", "err", err)
		os.Exit(1)
	}
}

// exportSuite writes the -metrics JSON (manifest + merged registry +
// every kernel×config phase series) and/or the -phases CSV. Runs are
// ordered by kernel name then sim.Configs order, so the export is
// deterministic at any parallelism.
func exportSuite(man *metrics.Manifest, scale int, suite *experiments.Suite,
	metricsPath, phasesPath string) {
	man.Scale = scale
	man.Workers = suite.Workers
	man.SetCalibration(suite.Cal)
	blobs := [][]byte{man.Calibration}
	for _, s := range suite.Setups {
		blobs = append(blobs, s.Synth.Spec.MarshalConfig())
	}
	man.ConfigHash = metrics.HashConfig(blobs...)

	var runs []metrics.RunExport
	for _, s := range suite.Setups {
		for _, cfg := range sim.Configs {
			r := suite.Results[s.Kernel.Name][cfg.Name]
			runs = append(runs, metrics.RunExport{
				Kernel: s.Kernel.Name, Config: cfg.Name, Series: r.Phases,
				Stalls: sim.Stalls(r.Pipe)})
		}
	}
	if metricsPath != "" {
		man.Finish()
		exp := &metrics.Export{Manifest: man, Registry: suite.Metrics.Snapshot(), Runs: runs}
		if err := exp.WriteJSONFile(metricsPath); err != nil {
			fatal(err)
		}
		log.Info("wrote metrics export", "path", metricsPath)
	}
	if phasesPath != "" {
		if err := metrics.WritePhasesCSVFile(phasesPath, runs); err != nil {
			fatal(err)
		}
		log.Info("wrote phase series", "path", phasesPath)
	}
}

// archiveSuite writes the complete run record. A path ending in .json
// lands exactly there (the CI baseline workflow); anything else is
// treated as a run-store directory and the record is filed under its
// deterministic run ID. Store destinations additionally publish the
// store's run-count/byte gauges onto the suite registry, so they ride
// into any later -metrics export and the telemetry /metrics page.
func archiveSuite(man *metrics.Manifest, scale int, suite *experiments.Suite, dest string) {
	rec := archive.FromSuite(man, suite, scale)
	man.Finish()
	path := dest
	var err error
	if strings.HasSuffix(dest, ".json") {
		err = rec.WriteFile(dest)
	} else {
		st := archive.NewStore(dest)
		path, err = st.Save(rec)
		if err == nil {
			if serr := st.PublishStats(suite.Metrics.Scope("archive")); serr != nil {
				log.Warn("archive store stats unavailable", "err", serr)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	log.Info("archived run", "run_id", rec.RunID, "path", path)
}

func main() {
	fs := flag.NewFlagSet("fitsbench", flag.ContinueOnError)
	var (
		scale       = fs.Int("scale", 0, "workload scale (0 = per-kernel default)")
		exp         = fs.String("exp", "all", "experiment id: all, figs, fig3..fig14, headline, ablations, ablate-opwidth, ablate-dict, ablate-regs, ablate-mode")
		quiet       = fs.Bool("q", false, "suppress progress output")
		jobs        = fs.Int("j", 0, "parallel workers (0 = all cores, 1 = sequential)")
		jsonPath    = fs.String("json", "", "write suite timing and headline averages as JSON to this path")
		archiveTo   = fs.String("archive", "", "archive the complete run record: a .json path, or a run-store directory")
		metricsPath = fs.String("metrics", "", "write manifest + suite registry + phase series as JSON")
		phasesPath  = fs.String("phases", "", "write every run's phase series as CSV")
		window      = fs.Int("window", 4096, "phase-sample window in cycles (with -metrics/-phases)")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile to this path")
		traceOut    = fs.String("trace", "", "write a runtime/trace execution trace to this path")
		pipeBench   = fs.String("pipebench", "", "benchmark the predecoded timing loop and write BENCH_pipeline.json-style output to this path, then exit; if the path already holds a record, a per-entry delta table is printed first")
		pipeKernel  = fs.String("pipebench-kernel", "crc32", "kernel the -pipebench loop runs")
		sweepKernel = fs.String("sweep", "", "run the design-space exploration engine over this kernel's default grid and print the Pareto frontier, then exit (incremental vs -sweep-dir; -scale/-j/-json apply)")
		sweepDir    = fs.String("sweep-dir", "", "run store the -sweep probes and fills (default .powerfits/runs)")
		superblocks = fs.Bool("superblocks", false, "profile kernels through the fused superblock executor (identical profiles, faster preparation)")
		sample      = fs.Bool("sample", false, "replace full pipeline runs with the sampled timing estimator (exact outputs, ≤2% validated cycle/energy error)")
	)
	tf := cli.RegisterFlags(fs)
	log = cli.Parse("fitsbench", fs, tf, os.Args[1:])

	if *sample && (*metricsPath != "" || *phasesPath != "") {
		fatal(fmt.Errorf("-sample is incompatible with -metrics/-phases: phase series require a full detailed run"))
	}

	var err error
	tele, err = tf.Start(log, nil)
	if err != nil {
		fatal(err)
	}
	defer tele.Close()

	if *pipeBench != "" {
		if err := runPipeBench(*pipeBench, *pipeKernel, *scale); err != nil {
			fatal(err)
		}
		return
	}

	if *sweepKernel != "" {
		if err := runSweep(*sweepKernel, *scale, *jobs, *sweepDir, *jsonPath, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	stop, err := metrics.StartProfiles(metrics.ProfileConfig{
		CPUProfile: *cpuProf, MemProfile: *memProf, Trace: *traceOut})
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer finish()

	var progress experiments.ProgressFunc
	if !*quiet {
		// The raw heartbeat line is a pinned format (TestHeartbeatFormat);
		// it stays a byte-exact stderr line, not a structured record.
		progress = experiments.LineProgress(func(line string) { cli.Rawln(line) })
	}

	want := strings.ToLower(*exp)
	var tables []*experiments.Table

	needSuite := true
	switch want {
	case "ablations", "ablate-opwidth", "ablate-dict", "ablate-regs", "ablate-mode",
		"extensions", "ext-activity", "ext-geometry", "ext-energy", "ext-traffic", "ext-cpi":
		needSuite = false
	}

	if needSuite {
		man := metrics.NewManifest("fitsbench")
		var observe sim.ObserveOptions
		if *metricsPath != "" || *phasesPath != "" {
			observe.WindowCycles = *window
		}
		tele.Begin(len(kernels.All()))
		suite, err := experiments.RunSuite(experiments.Options{
			Scale: *scale, Workers: *jobs,
			Progress: experiments.MultiProgress(progress, tele.Progress()),
			Log:      log, Observe: observe,
			Superblocks: *superblocks, Sampled: *sample})
		if err != nil {
			fatal(err)
		}
		tele.Finish(nil)
		if !*quiet {
			log.Info("suite generated", "wall_sec", suite.WallSec, "workers", suite.Workers)
		}
		for _, t := range suite.AllFigures() {
			if want == "all" || want == "figs" || want == t.ID || strings.HasPrefix(t.ID, want) {
				tables = append(tables, t)
			}
		}
		if *jsonPath != "" {
			man.Scale, man.Workers = *scale, suite.Workers
			man.SetCalibration(suite.Cal)
			man.Finish()
			rep := experiments.NewBenchReport(man, *scale, suite)
			if err := rep.WriteFile(*jsonPath); err != nil {
				fatal(err)
			}
			log.Info("wrote bench report", "path", *jsonPath)
		}
		if *archiveTo != "" {
			archiveSuite(man, *scale, suite, *archiveTo)
		}
		if *metricsPath != "" || *phasesPath != "" {
			exportSuite(man, *scale, suite, *metricsPath, *phasesPath)
		}
		// Fold the suite's merged registry into the served one so a
		// lingering /metrics scrape sees the complete run.
		tele.Merge(suite.Metrics)
	} else if *jsonPath != "" || *metricsPath != "" || *phasesPath != "" || *archiveTo != "" {
		fatal(fmt.Errorf("-json/-metrics/-phases/-archive require a suite experiment (not ablations/extensions)"))
	}

	ext := func(f func(int) (*experiments.Table, error)) *experiments.Table {
		t, err := f(1)
		if err != nil {
			fatal(err)
		}
		return t
	}
	switch want {
	case "all", "ablations":
		tables = append(tables, experiments.AblateOpcodeWidth()...)
		tables = append(tables, experiments.AblateDict()...)
		tables = append(tables, experiments.AblateWindow()...)
		tables = append(tables, experiments.AblateModes()...)
		if want == "all" {
			tables = append(tables, ext(experiments.ExtSwitchingModel),
				ext(experiments.ExtGeometry), ext(experiments.ExtEnergy),
				ext(experiments.ExtTraffic), ext(experiments.ExtCPI))
		}
	case "ablate-opwidth":
		tables = experiments.AblateOpcodeWidth()
	case "ablate-dict":
		tables = experiments.AblateDict()
	case "ablate-regs":
		tables = experiments.AblateWindow()
	case "ablate-mode":
		tables = experiments.AblateModes()
	case "extensions":
		tables = []*experiments.Table{ext(experiments.ExtSwitchingModel),
			ext(experiments.ExtGeometry), ext(experiments.ExtEnergy),
			ext(experiments.ExtTraffic), ext(experiments.ExtCPI)}
	case "ext-activity":
		tables = []*experiments.Table{ext(experiments.ExtSwitchingModel)}
	case "ext-geometry":
		tables = []*experiments.Table{ext(experiments.ExtGeometry)}
	case "ext-energy":
		tables = []*experiments.Table{ext(experiments.ExtEnergy)}
	case "ext-traffic":
		tables = []*experiments.Table{ext(experiments.ExtTraffic)}
	case "ext-cpi":
		tables = []*experiments.Table{ext(experiments.ExtCPI)}
	}

	if len(tables) == 0 {
		fatal(fmt.Errorf("no experiment matches %q", *exp))
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
}
