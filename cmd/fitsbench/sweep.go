package main

import (
	"fmt"
	"os"

	"powerfits/cmd/internal/cli"
	"powerfits/internal/archive"
	"powerfits/internal/experiments"
	"powerfits/internal/metrics"
	"powerfits/internal/sweep"
	"powerfits/internal/synth"
)

// runSweep drives the design-space exploration engine over one
// kernel's default grid — the fitsbench face of `powerfits sweep`,
// sharing the same run store so the two tools' sweeps are mutually
// incremental.
func runSweep(kernel string, scale, jobs int, dir, jsonPath string, quiet bool) error {
	grid := sweep.DefaultGrid(kernel, scale)
	var progress experiments.ProgressFunc
	if !quiet {
		progress = experiments.LineProgress(func(line string) { cli.Rawln(line) })
	}
	tele.Begin(grid.Size())
	var reg *metrics.Registry
	if tele != nil {
		reg = tele.Registry
	}
	res, err := sweep.Run(sweep.Options{
		Grid:     grid,
		Workers:  jobs,
		Store:    archive.NewStore(dir),
		Synth:    synth.DefaultOptions(),
		Progress: experiments.MultiProgress(progress, tele.Progress()),
		Metrics:  reg,
		Log:      log,
	})
	tele.Finish(err)
	if err != nil {
		return err
	}
	res.FrontierTable().Render(os.Stdout)
	st := res.Stats
	fmt.Printf("\n%d points: %d evaluated, %d archive skips, %d infeasible; profile runs %d (memo hits %d); refined %d (+%d skips); %.2fs\n",
		st.Points, st.Evaluated, st.ArchiveSkips, st.Infeasible,
		st.ProfileRuns, st.MemoHits, st.Refined, st.RefineSkips, st.WallSec)
	if jsonPath != "" {
		if err := res.Document().WriteFile(jsonPath); err != nil {
			return err
		}
		log.Info("wrote sweep document", "path", jsonPath, "frontier", len(res.Frontier))
	}
	return nil
}
