package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"powerfits/internal/experiments"
	"powerfits/internal/metrics"
)

// capture swaps the sanctioned stream and the exit hook for one test,
// returning the captured stderr and exit codes.
func capture(t *testing.T) (*bytes.Buffer, *[]int) {
	t.Helper()
	var buf bytes.Buffer
	var codes []int
	oldStderr, oldExit := Stderr, exit
	Stderr = &buf
	exit = func(code int) { codes = append(codes, code) }
	t.Cleanup(func() { Stderr, exit = oldStderr, oldExit })
	return &buf, &codes
}

func newFlagSet() (*flag.FlagSet, *Flags) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	return fs, RegisterFlags(fs)
}

func TestParseHappyPath(t *testing.T) {
	buf, codes := capture(t)
	fs, f := newFlagSet()
	log := Parse("test", fs, f, []string{"-log-level", "warn", "-log-json"})
	if len(*codes) != 0 {
		t.Fatalf("clean parse exited with %v", *codes)
	}
	log.Info("hidden")
	if buf.Len() != 0 {
		t.Fatalf("info record emitted at warn level: %q", buf.String())
	}
	log.Warn("shown", "k", "v")
	if out := buf.String(); !strings.Contains(out, `"msg":"shown"`) || !strings.Contains(out, `"tool":"test"`) {
		t.Fatalf("-log-json warn record wrong: %q", out)
	}
}

func TestParseFlagErrorExitsTwo(t *testing.T) {
	buf, codes := capture(t)
	fs, f := newFlagSet()
	Parse("test", fs, f, []string{"-no-such-flag"})
	if len(*codes) == 0 || (*codes)[0] != 2 {
		t.Fatalf("flag error exit codes %v, want [2 ...]", *codes)
	}
	if !strings.Contains(buf.String(), "flag parse failed") {
		t.Fatalf("flag error not logged: %q", buf.String())
	}
}

func TestParseBadLogLevelExitsTwo(t *testing.T) {
	buf, codes := capture(t)
	fs, f := newFlagSet()
	Parse("test", fs, f, []string{"-log-level", "shouty"})
	if len(*codes) == 0 || (*codes)[0] != 2 {
		t.Fatalf("bad log level exit codes %v, want [2 ...]", *codes)
	}
	if !strings.Contains(buf.String(), "invalid logging flags") {
		t.Fatalf("bad level not logged: %q", buf.String())
	}
}

func TestParseHelpExitsZero(t *testing.T) {
	buf, codes := capture(t)
	fs, f := newFlagSet()
	Parse("test", fs, f, []string{"-h"})
	if len(*codes) == 0 || (*codes)[0] != 0 {
		t.Fatalf("-h exit codes %v, want [0 ...]", *codes)
	}
	if !strings.Contains(buf.String(), "-log-level") {
		t.Fatalf("-h did not print usage: %q", buf.String())
	}
}

// TestNilTelemetryIsInert exercises every method on the nil receiver —
// the contract that lets call sites skip "-telemetry given?" branches.
func TestNilTelemetryIsInert(t *testing.T) {
	var tele *Telemetry
	if p := tele.Progress(); p != nil {
		t.Fatal("nil telemetry returned a progress sink")
	}
	tele.Begin(3)
	tele.Publish(experiments.ProgressEvent{Kernel: "crc32"})
	tele.Finish(nil)
	tele.Merge(metrics.NewRegistry())
	tele.Scope("a", "b").Counter("c").Inc() // throwaway registry, no panic
	tele.Close()
	tele.CloseNow()
}

// TestFlagsStart verifies the -telemetry lifecycle: no flag means no
// server, a flag boots one whose tracker and registry feed /metrics.
func TestFlagsStart(t *testing.T) {
	capture(t)
	f := &Flags{}
	tele, err := f.Start(fallbackLogger("test"), nil)
	if err != nil || tele != nil {
		t.Fatalf("empty -telemetry: got (%v, %v), want (nil, nil)", tele, err)
	}

	f = &Flags{Telemetry: "127.0.0.1:0"}
	tele, err = f.Start(fallbackLogger("test"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.CloseNow()
	if tele.Server.Addr() == "" {
		t.Fatal("server has no bound address")
	}
	tele.Begin(2)
	tele.Publish(experiments.ProgressEvent{Kernel: "crc32", Done: 1, Total: 2, DynInstrs: 10})
	tele.Finish(nil)
	if st := tele.Tracker.State(); st.Phase != "done" || st.Done != 1 {
		t.Fatalf("tracker state %+v after scripted run", st)
	}
	other := metrics.NewRegistry()
	other.Counter("side/counter").Add(5)
	tele.Merge(other)
	if got := tele.Registry.Counter("side/counter").Value(); got != 5 {
		t.Fatalf("merged counter %d, want 5", got)
	}
	tele.Scope("run", "crc32").Gauge("ipc").Set(0.5)
	if got := tele.Registry.Gauge("run/crc32/ipc").Value(); got != 0.5 {
		t.Fatalf("scoped gauge %v, want 0.5", got)
	}
}
