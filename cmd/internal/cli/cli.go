// Package cli is the command-line plumbing shared by the powerfits and
// fitsbench binaries: the observability flag block (-log-level,
// -log-json, -telemetry, -telemetry-addrfile, -telemetry-linger), slog
// construction with a consistent flag-error exit path, and the
// lifecycle of the embedded telemetry debug server.
//
// Stderr discipline: the binaries never write to os.Stderr directly.
// Structured records (errors, progress notes, "wrote X" confirmations)
// go through the run logger; the few raw lines that must stay
// byte-exact — the engine heartbeat, usage text, benchmark delta
// tables — go through Raw/Rawln, the one sanctioned handle. An audit
// test (audit_test.go) greps both command trees to enforce this.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"powerfits/internal/experiments"
	"powerfits/internal/metrics"
	"powerfits/internal/telemetry"
)

// Stderr is the sanctioned raw stream: everything a binary writes
// outside the structured logger goes through it (swappable in tests).
var Stderr io.Writer = os.Stderr

// exit is os.Exit, indirected so package tests can intercept it.
var exit = os.Exit

// Raw writes a raw formatted line fragment to the sanctioned stream —
// for output whose bytes are part of a pinned format (heartbeats,
// delta tables), not for diagnostics; those go through the logger.
func Raw(format string, args ...any) {
	fmt.Fprintf(Stderr, format, args...)
}

// Rawln writes one raw line to the sanctioned stream.
func Rawln(args ...any) {
	fmt.Fprintln(Stderr, args...)
}

// Flags is the observability flag block both binaries register.
type Flags struct {
	LogLevel          string
	LogJSON           bool
	Telemetry         string
	TelemetryAddrFile string
	TelemetryLinger   time.Duration
}

// RegisterFlags installs the shared observability flags on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.LogLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit logs as JSON records instead of key=value text")
	fs.StringVar(&f.Telemetry, "telemetry", "", "serve live telemetry (/metrics, /healthz, /progress, /debug/pprof) on this host:port (port 0 picks an ephemeral port)")
	fs.StringVar(&f.TelemetryAddrFile, "telemetry-addrfile", "", "write the telemetry server's bound address to this file (the handshake scripts poll when using -telemetry with port 0)")
	fs.DurationVar(&f.TelemetryLinger, "telemetry-linger", 0, "keep the telemetry server up this long after the run completes, so a scraper always catches the final state")
	return f
}

// fallbackLogger is the logger used before flag parsing has produced a
// configured one: text handler, info level, on the sanctioned stream.
func fallbackLogger(tool string) *slog.Logger {
	log, _ := telemetry.NewLogger(tool, telemetry.LogOptions{Output: Stderr})
	return log
}

// Parse parses args and returns the run logger. Flag errors take the
// consistent exit path the binaries share: -h prints the flag set's
// usage and exits 0; a parse error or a bad logging flag is reported
// through slog and exits 2. fs must have been created with
// flag.ContinueOnError.
func Parse(tool string, fs *flag.FlagSet, f *Flags, args []string) *slog.Logger {
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(Stderr)
			fs.Usage()
			exit(0)
			return nil
		}
		fallbackLogger(tool).Error("flag parse failed", "err", err)
		exit(2)
		return nil
	}
	log, err := telemetry.NewLogger(tool, telemetry.LogOptions{
		Level: f.LogLevel, JSON: f.LogJSON, Output: Stderr})
	if err != nil {
		fallbackLogger(tool).Error("invalid logging flags", "err", err)
		exit(2)
		return nil
	}
	return log
}

// Telemetry is a started debug server plus the run-scoped registry and
// progress tracker feeding it. All methods are nil-receiver-safe, so
// call sites need no "-telemetry given?" branches.
type Telemetry struct {
	Server   *telemetry.Server
	Registry *metrics.Registry
	Tracker  *telemetry.Tracker
	linger   time.Duration
	log      *slog.Logger
}

// Start launches the embedded debug server when -telemetry was given
// and returns nil (with no error) otherwise. gather, when non-nil,
// refreshes derived gauges before each /metrics snapshot.
func (f *Flags) Start(log *slog.Logger, gather func(*metrics.Registry)) (*Telemetry, error) {
	if f.Telemetry == "" {
		return nil, nil
	}
	reg := metrics.NewRegistry()
	tracker := telemetry.NewTracker(reg)
	srv, err := telemetry.Serve(f.Telemetry, telemetry.Options{
		Registry: reg,
		Gather:   gather,
		Tracker:  tracker,
		Log:      log,
		AddrFile: f.TelemetryAddrFile,
	})
	if err != nil {
		return nil, err
	}
	return &Telemetry{Server: srv, Registry: reg, Tracker: tracker,
		linger: f.TelemetryLinger, log: log}, nil
}

// Progress returns the tracker's event sink, or nil when telemetry is
// off — composable with experiments.MultiProgress.
func (t *Telemetry) Progress() experiments.ProgressFunc {
	if t == nil {
		return nil
	}
	return t.Tracker.Publish
}

// Begin marks the start of a run of total units on the tracker.
func (t *Telemetry) Begin(total int) {
	if t != nil {
		t.Tracker.Begin(total)
	}
}

// Publish forwards one progress event to the tracker.
func (t *Telemetry) Publish(ev experiments.ProgressEvent) {
	if t != nil {
		t.Tracker.Publish(ev)
	}
}

// Finish marks the run complete or failed on the tracker.
func (t *Telemetry) Finish(err error) {
	if t != nil {
		t.Tracker.Finish(err)
	}
}

// Merge folds a run registry (e.g. the suite's merged metrics) into
// the served registry so /metrics exposes the final counters.
func (t *Telemetry) Merge(reg *metrics.Registry) {
	if t == nil || reg == nil {
		return
	}
	if err := t.Registry.Merge(reg); err != nil {
		t.log.Warn("telemetry registry merge failed", "err", err)
	}
}

// Scope returns a scoped view of the served registry, or a zero Scope
// writing to a throwaway registry when telemetry is off.
func (t *Telemetry) Scope(parts ...string) metrics.Scope {
	if t == nil {
		return metrics.NewRegistry().Scope(parts...)
	}
	return t.Registry.Scope(parts...)
}

// Close lingers for the configured duration (so late scrapers catch
// the final state) and then stops the server. Error paths should call
// CloseNow instead.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	if t.linger > 0 {
		t.log.Info("telemetry server lingering", "addr", t.Server.Addr(), "for", t.linger.String())
		time.Sleep(t.linger)
	}
	t.Server.Close()
}

// CloseNow stops the server immediately, skipping the linger.
func (t *Telemetry) CloseNow() {
	if t != nil {
		t.Server.Close()
	}
}
