package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoRawStderrInCommands greps both command trees for direct
// os.Stderr use — the stderr-discipline audit. Every diagnostic goes
// through the run logger and every pinned-format line through
// Raw/Rawln, so the only file allowed to name os.Stderr under cmd/ is
// this package's cli.go (the sanctioned funnel).
func TestNoRawStderrInCommands(t *testing.T) {
	root := filepath.Join("..", "..") // cmd/
	allowed := map[string]bool{
		filepath.Join(root, "internal", "cli", "cli.go"): true,
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		// Tests may capture or name os.Stderr; the discipline governs
		// what the binaries themselves emit.
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(blob), "\n") {
			if strings.Contains(line, "os.Stderr") && !allowed[path] {
				t.Errorf("%s:%d writes to os.Stderr directly; use the run logger or cli.Raw/Rawln", path, i+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
